// Package workloads defines the datatypes of the paper's Rust evaluation
// (Section V.A) together with every transfer method benchmarked against
// them:
//
//   - double-vec          — Vec<Vec<i32>>, a dynamic list of heap vectors
//     (Listing: "double-vector type"); custom datatype with a packed
//     length header plus one region per subvector, versus manual packing
//     into a single buffer, versus a raw-bytes baseline;
//   - struct-vec          — Listing 6: three i32s, an alignment gap, an
//     f64, and a 2048-element i32 array; packed fields + one region;
//   - struct-simple       — Listing 7: the same without the array (packing
//     only, exercising the gap);
//   - struct-simple-no-gap — Listing 8: no gap, fully contiguous.
//
// Struct buffers are C-layout byte images (see package layout), so the
// derived-datatype baseline, the manual packing loops and the custom
// handlers all move exactly the bytes the paper's #[repr(C)] Rust structs
// contain.
package workloads

import (
	"errors"
	"fmt"

	"mpicd/internal/core"
	"mpicd/internal/ddt"
	"mpicd/internal/derive"
	"mpicd/internal/layout"
)

// Count aliases the MPI count type.
type Count = core.Count

// ---------------------------------------------------------------------------
// struct layouts (Listings 6-8)

// StructVec layout constants: {a,b,c: i32 @ 0,4,8; gap @ 12; d: f64 @ 16;
// data: [2048]i32 @ 24}.
const (
	StructVecDataLen = 2048
	StructVecExtent  = 24 + 4*StructVecDataLen
	StructVecPacked  = 12 + 8 + 4*StructVecDataLen // gap elided
	structVecFields  = 20                          // a,b,c,d packed bytes
)

// StructSimple layout: {a,b,c: i32 @ 0,4,8; gap @ 12; d: f64 @ 16}.
const (
	StructSimpleExtent = 24
	StructSimplePacked = 20
)

// StructSimpleNoGap layout: {a,b: i32 @ 0,4; c: f64 @ 8}.
const (
	StructSimpleNoGapExtent = 16
	StructSimpleNoGapPacked = 16
)

// Go-native mirrors of the paper structs. Go's alignment rules reproduce
// the #[repr(C)] layouts exactly (the f64 after three i32s forces the
// same 4-byte gap at offset 12), so deriving a datatype from these with
// package derive yields the very layouts the constants above describe —
// workloads_test pins the offsets and the derived/hand-built plan
// sharing.
type (
	// StructVecGo mirrors Listing 6: scalars, gap, and the big array.
	StructVecGo struct {
		A, B, C int32
		D       float64
		Data    [StructVecDataLen]int32
	}
	// StructSimpleGo mirrors Listing 7: the gapped struct.
	StructSimpleGo struct {
		A, B, C int32
		D       float64
	}
	// StructSimpleNoGapGo mirrors Listing 8: fully contiguous.
	StructSimpleNoGapGo struct {
		A, B int32
		C    float64
	}
)

// StructVecDerived returns the datatype derived from the Go mirror of
// struct-vec — transfer-equivalent to StructVecType() and sharing its
// compiled plan.
func StructVecDerived() *ddt.Type { return derive.MustTypeOf[StructVecGo]() }

// StructSimpleDerived returns the derived struct-simple datatype.
func StructSimpleDerived() *ddt.Type { return derive.MustTypeOf[StructSimpleGo]() }

// StructSimpleNoGapDerived returns the derived no-gap datatype.
func StructSimpleNoGapDerived() *ddt.Type { return derive.MustTypeOf[StructSimpleNoGapGo]() }

// StructVecType returns the derived datatype for struct-vec (what RSMPI's
// derive macro would build for Listing 6).
func StructVecType() *ddt.Type {
	t, err := ddt.Struct(
		[]int{3, 1, StructVecDataLen},
		[]int64{0, 16, 24},
		[]*ddt.Type{ddt.Int32, ddt.Float64, ddt.Int32},
	)
	if err != nil {
		panic(err)
	}
	return t
}

// StructSimpleType returns the derived datatype for struct-simple
// (Listing 7): the interior gap forces two runs per element.
func StructSimpleType() *ddt.Type {
	t, err := ddt.Struct([]int{3, 1}, []int64{0, 16}, []*ddt.Type{ddt.Int32, ddt.Float64})
	if err != nil {
		panic(err)
	}
	return t
}

// StructSimpleNoGapType returns the derived datatype for
// struct-simple-no-gap (Listing 8): fully contiguous.
func StructSimpleNoGapType() *ddt.Type {
	t, err := ddt.Struct([]int{2, 1}, []int64{0, 8}, []*ddt.Type{ddt.Int32, ddt.Float64})
	if err != nil {
		panic(err)
	}
	return t
}

// FillStructVec writes count deterministic struct-vec elements into image.
func FillStructVec(image []byte, count int, seed int32) {
	for e := 0; e < count; e++ {
		base := e * StructVecExtent
		layout.PutI32(image, base+0, seed+int32(3*e))
		layout.PutI32(image, base+4, seed+int32(3*e+1))
		layout.PutI32(image, base+8, seed+int32(3*e+2))
		layout.PutF64(image, base+16, float64(seed)+float64(e)/16)
		for i := 0; i < StructVecDataLen; i++ {
			layout.PutI32(image, base+24+4*i, seed^int32(e*StructVecDataLen+i))
		}
	}
}

// FillStructSimple writes count deterministic struct-simple elements.
func FillStructSimple(image []byte, count int, seed int32) {
	for e := 0; e < count; e++ {
		base := e * StructSimpleExtent
		layout.PutI32(image, base+0, seed+int32(3*e))
		layout.PutI32(image, base+4, seed+int32(3*e+1))
		layout.PutI32(image, base+8, seed+int32(3*e+2))
		layout.PutF64(image, base+16, float64(seed)+float64(e)/16)
	}
}

// FillStructSimpleNoGap writes count deterministic no-gap elements.
func FillStructSimpleNoGap(image []byte, count int, seed int32) {
	for e := 0; e < count; e++ {
		base := e * StructSimpleNoGapExtent
		layout.PutI32(image, base+0, seed+int32(2*e))
		layout.PutI32(image, base+4, seed+int32(2*e+1))
		layout.PutF64(image, base+8, float64(seed)+float64(e)/16)
	}
}

// ---------------------------------------------------------------------------
// manual packing loops (the paper's "manual-pack"/"packed" method)

// PackStructVec packs count elements field by field, eliding the gap —
// the hand-written loop an application would use before sending bytes.
func PackStructVec(image []byte, count int, dst []byte) int {
	w := 0
	for e := 0; e < count; e++ {
		base := e * StructVecExtent
		w += copy(dst[w:], image[base:base+12])    // a, b, c
		w += copy(dst[w:], image[base+16:base+24]) // d
		w += copy(dst[w:], image[base+24:base+24+4*StructVecDataLen])
	}
	return w
}

// UnpackStructVec reverses PackStructVec.
func UnpackStructVec(src []byte, image []byte, count int) {
	r := 0
	for e := 0; e < count; e++ {
		base := e * StructVecExtent
		r += copy(image[base:base+12], src[r:r+12])
		r += copy(image[base+16:base+24], src[r:r+8])
		r += copy(image[base+24:base+24+4*StructVecDataLen], src[r:r+4*StructVecDataLen])
	}
}

// PackStructSimple packs count struct-simple elements (20 bytes each).
func PackStructSimple(image []byte, count int, dst []byte) int {
	w := 0
	for e := 0; e < count; e++ {
		base := e * StructSimpleExtent
		w += copy(dst[w:], image[base:base+12])
		w += copy(dst[w:], image[base+16:base+24])
	}
	return w
}

// UnpackStructSimple reverses PackStructSimple.
func UnpackStructSimple(src []byte, image []byte, count int) {
	r := 0
	for e := 0; e < count; e++ {
		base := e * StructSimpleExtent
		r += copy(image[base:base+12], src[r:r+12])
		r += copy(image[base+16:base+24], src[r:r+8])
	}
}

// PackStructSimpleNoGap is a single copy: the type is contiguous.
func PackStructSimpleNoGap(image []byte, count int, dst []byte) int {
	return copy(dst, image[:count*StructSimpleNoGapExtent])
}

// UnpackStructSimpleNoGap reverses PackStructSimpleNoGap.
func UnpackStructSimpleNoGap(src []byte, image []byte, count int) {
	copy(image[:count*StructSimpleNoGapExtent], src)
}

// ---------------------------------------------------------------------------
// custom datatype handlers

// structImageHandler is the custom handler shared by the three struct
// types: it packs `packedFields` bytes per element from the runs before
// the data array, and exposes `regionLen` bytes per element as a region.
// Buffers are []byte images.
type structImageHandler struct {
	extent    int   // bytes per element in memory
	fieldRuns []run // packed field runs within one element
	fieldSize int   // sum of fieldRuns lengths
	regionOff int   // offset of the region within an element (-1: none)
	regionLen int
}

type run struct{ off, len int }

func (h *structImageHandler) image(buf any, count Count) ([]byte, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, fmt.Errorf("workloads: expected []byte image, got %T", buf)
	}
	if int64(len(b)) < count*int64(h.extent) {
		return nil, fmt.Errorf("workloads: image of %d bytes cannot hold %d elements", len(b), count)
	}
	return b, nil
}

func (h *structImageHandler) State(buf any, count Count) (any, error) {
	return h.image(buf, count)
}

func (h *structImageHandler) FreeState(any) error { return nil }

func (h *structImageHandler) PackedSize(_, _ any, count Count) (Count, error) {
	return count * Count(h.fieldSize), nil
}

// Pack is specialized the way an application's own pack callback would
// be: whole elements move with fixed-size copies (the compiler lowers
// constant-length copies to wide moves), and only the fragment-boundary
// elements take the generic run walk. The paper's Rust handlers are
// per-type trait implementations with exactly this character.
func (h *structImageHandler) Pack(state, _ any, count, offset Count, dst []byte) (Count, error) {
	img := state.([]byte)
	total := count * Count(h.fieldSize)
	if rem := total - offset; Count(len(dst)) > rem {
		dst = dst[:rem]
	}
	var used Count
	// Leading partial element.
	if within := int(offset) % h.fieldSize; within != 0 {
		used += h.packSlow(img, offset, dst)
	}
	// Bulk: whole elements with fixed 12+8-byte field copies.
	if h.fieldSize == 20 && len(h.fieldRuns) == 2 {
		e := int(offset+used) / 20
		base := e * h.extent
		for used+20 <= Count(len(dst)) {
			w := used
			copy(dst[w:w+12], img[base:base+12])
			copy(dst[w+12:w+20], img[base+16:base+24])
			used += 20
			base += h.extent
		}
	}
	// Trailing partial element (or non-20-byte layouts entirely).
	for used < Count(len(dst)) {
		n := h.packSlow(img, offset+used, dst[used:])
		if n == 0 {
			break
		}
		used += n
	}
	return used, nil
}

// packSlow packs at most one element's worth of bytes at offset.
func (h *structImageHandler) packSlow(img []byte, offset Count, dst []byte) Count {
	e := int(offset) / h.fieldSize
	within := int(offset) % h.fieldSize
	base := e * h.extent
	var used Count
	for _, r := range h.fieldRuns {
		if within >= r.len {
			within -= r.len
			continue
		}
		n := copy(dst[used:], img[base+r.off+within:base+r.off+r.len])
		used += Count(n)
		within = 0
		if used == Count(len(dst)) {
			break
		}
	}
	return used
}

func (h *structImageHandler) Unpack(state, _ any, count, offset Count, src []byte) error {
	img := state.([]byte)
	if offset+Count(len(src)) > count*Count(h.fieldSize) {
		return errors.New("workloads: unpack past end")
	}
	// Leading partial element.
	if within := int(offset) % h.fieldSize; within != 0 {
		n := h.unpackSlow(img, offset, src)
		src = src[n:]
		offset += n
	}
	// Bulk whole elements.
	if h.fieldSize == 20 && len(h.fieldRuns) == 2 {
		base := int(offset) / 20 * h.extent
		for len(src) >= 20 {
			copy(img[base:base+12], src[:12])
			copy(img[base+16:base+24], src[12:20])
			src = src[20:]
			offset += 20
			base += h.extent
		}
	}
	for len(src) > 0 {
		n := h.unpackSlow(img, offset, src)
		if n == 0 {
			break
		}
		src = src[n:]
		offset += n
	}
	return nil
}

// unpackSlow consumes at most one element's worth of bytes at offset.
func (h *structImageHandler) unpackSlow(img []byte, offset Count, src []byte) Count {
	e := int(offset) / h.fieldSize
	within := int(offset) % h.fieldSize
	base := e * h.extent
	var used Count
	for _, r := range h.fieldRuns {
		if len(src) == 0 {
			break
		}
		if within >= r.len {
			within -= r.len
			continue
		}
		n := copy(img[base+r.off+within:base+r.off+r.len], src)
		src = src[n:]
		used += Count(n)
		within = 0
	}
	return used
}

func (h *structImageHandler) RegionCount(_, _ any, count Count) (Count, error) {
	if h.regionOff < 0 {
		return 0, nil
	}
	return count, nil
}

func (h *structImageHandler) Regions(state, _ any, count Count, regions [][]byte) error {
	if h.regionOff < 0 {
		return nil
	}
	img := state.([]byte)
	for e := Count(0); e < count; e++ {
		base := int(e) * h.extent
		regions[e] = img[base+h.regionOff : base+h.regionOff+h.regionLen]
	}
	return nil
}

// StructVecCustom returns the custom datatype for struct-vec: fields
// packed, data array exposed as a region per element. This is how the
// paper's custom method treats the type "as if it contained a vector".
func StructVecCustom() *core.Datatype {
	return core.TypeCreateCustom(&structImageHandler{
		extent:    StructVecExtent,
		fieldRuns: []run{{0, 12}, {16, 8}},
		fieldSize: structVecFields,
		regionOff: 24,
		regionLen: 4 * StructVecDataLen,
	}, core.WithName("struct-vec-custom"))
}

// StructSimpleCustom returns the custom datatype for struct-simple: pure
// packing, no regions.
func StructSimpleCustom() *core.Datatype {
	return core.TypeCreateCustom(&structImageHandler{
		extent:    StructSimpleExtent,
		fieldRuns: []run{{0, 12}, {16, 8}},
		fieldSize: StructSimplePacked,
		regionOff: -1,
	}, core.WithName("struct-simple-custom"))
}

// StructSimpleNoGapCustom returns the custom datatype for the contiguous
// no-gap struct: a single region per buffer, no packing at all.
func StructSimpleNoGapCustom() *core.Datatype {
	return core.TypeCreateCustom(&noGapHandler{}, core.WithName("struct-simple-no-gap-custom"))
}

// noGapHandler exposes the whole contiguous image as one region.
type noGapHandler struct{}

func (noGapHandler) State(buf any, count Count) (any, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, fmt.Errorf("workloads: expected []byte image, got %T", buf)
	}
	need := count * StructSimpleNoGapExtent
	if int64(len(b)) < need {
		return nil, fmt.Errorf("workloads: image of %d bytes cannot hold %d elements", len(b), count)
	}
	return b[:need], nil
}

func (noGapHandler) FreeState(any) error                         { return nil }
func (noGapHandler) PackedSize(_, _ any, _ Count) (Count, error) { return 0, nil }
func (noGapHandler) Pack(_, _ any, _, _ Count, _ []byte) (Count, error) {
	return 0, nil
}
func (noGapHandler) Unpack(_, _ any, _, _ Count, _ []byte) error  { return nil }
func (noGapHandler) RegionCount(_, _ any, _ Count) (Count, error) { return 1, nil }
func (noGapHandler) Regions(state, _ any, _ Count, regions [][]byte) error {
	regions[0] = state.([]byte)
	return nil
}

// ---------------------------------------------------------------------------
// double-vec (Vec<Vec<i32>>)

// NewDoubleVec builds a double-vector of total bytes split into subvectors
// of subvec bytes each (the paper's sub-vector length); a total smaller
// than subvec yields a single subvector of the full size.
func NewDoubleVec(total, subvec int, seed byte) [][]byte {
	if total <= subvec {
		v := make([]byte, total)
		fillBytes(v, seed)
		return [][]byte{v}
	}
	n := total / subvec
	vecs := make([][]byte, 0, n+1)
	remaining := total
	for remaining > 0 {
		sz := subvec
		if sz > remaining {
			sz = remaining
		}
		v := make([]byte, sz)
		fillBytes(v, seed+byte(len(vecs)))
		vecs = append(vecs, v)
		remaining -= sz
	}
	return vecs
}

func fillBytes(b []byte, seed byte) {
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
}

// DoubleVecBytes returns the total payload bytes of a double-vector.
func DoubleVecBytes(v [][]byte) int {
	n := 0
	for _, s := range v {
		n += len(s)
	}
	return n
}

// doubleVecHandler is the custom handler for [][]byte on the send side and
// *[][]byte on the receive side. The packed part carries the subvector
// count and lengths; each subvector is a memory region. Because the
// receive-side region layout is only known after the header is unpacked,
// the type requires in-order delivery (the paper's inorder flag).
type doubleVecHandler struct{}

type dvState struct {
	vecs   [][]byte  // send side (or materialized receive)
	out    *[][]byte // receive side destination
	header []byte    // receive: staged header bytes
	got    Count     // receive: header bytes seen
}

func dvHeaderSize(n int) Count { return Count(8 * (n + 1)) }

func (doubleVecHandler) State(buf any, _ Count) (any, error) {
	switch v := buf.(type) {
	case [][]byte:
		return &dvState{vecs: v}, nil
	case *[][]byte:
		return &dvState{out: v}, nil
	default:
		return nil, fmt.Errorf("workloads: double-vec buffer must be [][]byte or *[][]byte, got %T", buf)
	}
}

func (doubleVecHandler) FreeState(any) error { return nil }

func (s *dvState) sendVecs() ([][]byte, error) {
	if s.vecs != nil {
		return s.vecs, nil
	}
	if s.out != nil && *s.out != nil {
		return *s.out, nil
	}
	return nil, errors.New("workloads: double-vec buffer holds no data to pack")
}

func (doubleVecHandler) PackedSize(state, _ any, _ Count) (Count, error) {
	vecs, err := state.(*dvState).sendVecs()
	if err != nil {
		return 0, err
	}
	return dvHeaderSize(len(vecs)), nil
}

func (doubleVecHandler) Pack(state, _ any, _, offset Count, dst []byte) (Count, error) {
	vecs, err := state.(*dvState).sendVecs()
	if err != nil {
		return 0, err
	}
	hdr := make([]byte, dvHeaderSize(len(vecs)))
	layout.PutI64(hdr, 0, int64(len(vecs)))
	for i, v := range vecs {
		layout.PutI64(hdr, 8*(i+1), int64(len(v)))
	}
	return Count(copy(dst, hdr[offset:])), nil
}

func (doubleVecHandler) Unpack(state, _ any, _, offset Count, src []byte) error {
	s := state.(*dvState)
	if s.out == nil {
		return errors.New("workloads: unpack into a send-side double-vec")
	}
	if s.header == nil {
		s.header = make([]byte, 8)
	}
	if offset < 8 {
		n := copy(s.header[offset:8], src)
		s.got += Count(n)
		src = src[n:]
		offset += Count(n)
	}
	if s.got >= 8 && len(s.header) == 8 {
		n := int(layout.I64(s.header, 0))
		grown := make([]byte, dvHeaderSize(n))
		copy(grown, s.header)
		s.header = grown
	}
	if len(src) > 0 {
		copy(s.header[offset:], src)
		s.got += Count(len(src))
	}
	if len(s.header) > 8 && s.got == Count(len(s.header)) {
		n := int(layout.I64(s.header, 0))
		vecs := make([][]byte, n)
		for i := 0; i < n; i++ {
			vecs[i] = make([]byte, layout.I64(s.header, 8*(i+1)))
		}
		*s.out = vecs
	}
	return nil
}

func (doubleVecHandler) RegionCount(state, _ any, _ Count) (Count, error) {
	s := state.(*dvState)
	vecs, err := s.sendVecs()
	if err != nil {
		return 0, err
	}
	return Count(len(vecs)), nil
}

func (doubleVecHandler) Regions(state, _ any, _ Count, regions [][]byte) error {
	s := state.(*dvState)
	vecs, err := s.sendVecs()
	if err != nil {
		return err
	}
	for i := range regions {
		regions[i] = vecs[i]
	}
	return nil
}

// DoubleVecCustom returns the custom datatype for Vec<Vec<i32>>.
func DoubleVecCustom() *core.Datatype {
	return core.TypeCreateCustom(doubleVecHandler{}, core.WithInOrder(), core.WithName("double-vec-custom"))
}

// PackDoubleVec serializes a double-vector into one buffer: the manual-
// pack baseline. Layout matches the custom wire image (header + data).
func PackDoubleVec(vecs [][]byte, dst []byte) int {
	layout.PutI64(dst, 0, int64(len(vecs)))
	w := int(dvHeaderSize(len(vecs)))
	for i, v := range vecs {
		layout.PutI64(dst, 8*(i+1), int64(len(v)))
	}
	for _, v := range vecs {
		w += copy(dst[w:], v)
	}
	return w
}

// PackedDoubleVecSize returns the manual-pack buffer size for vecs.
func PackedDoubleVecSize(vecs [][]byte) int {
	return int(dvHeaderSize(len(vecs))) + DoubleVecBytes(vecs)
}

// UnpackDoubleVec reverses PackDoubleVec, allocating the subvectors.
func UnpackDoubleVec(src []byte) ([][]byte, error) {
	if len(src) < 8 {
		return nil, errors.New("workloads: double-vec buffer too short")
	}
	n := int(layout.I64(src, 0))
	if n < 0 || int64(dvHeaderSize(n)) > int64(len(src)) {
		return nil, errors.New("workloads: corrupt double-vec header")
	}
	r := int(dvHeaderSize(n))
	vecs := make([][]byte, n)
	for i := 0; i < n; i++ {
		l := int(layout.I64(src, 8*(i+1)))
		if l < 0 || r+l > len(src) {
			return nil, errors.New("workloads: corrupt double-vec length")
		}
		vecs[i] = make([]byte, l)
		copy(vecs[i], src[r:r+l])
		r += l
	}
	return vecs, nil
}
