package fabric

import (
	"errors"
	"testing"
	"time"
)

// Tests for permanent rank death: the KillSwitch registry, the Kill
// fault action, and the dead-rank semantics every FaultNIC bound to a
// shared switch must enforce (a dead rank emits nothing, nothing is
// deliverable to it, and Gets touching it fail with ErrRankDead).

func TestKillSwitch(t *testing.T) {
	ks := NewKillSwitch()
	if ks.Dead(0) || ks.Mask() != 0 {
		t.Fatal("fresh switch reports deaths")
	}
	ks.Kill(3)
	ks.Kill(3) // idempotent
	ks.Kill(0)
	if !ks.Dead(3) || !ks.Dead(0) || ks.Dead(1) {
		t.Fatalf("Dead() wrong after kills: mask=%#x", ks.Mask())
	}
	if want := uint64(1<<3 | 1<<0); ks.Mask() != want {
		t.Fatalf("Mask() = %#x, want %#x", ks.Mask(), want)
	}
	// Out-of-range ranks are untrackable no-ops, never panics.
	ks.Kill(-1)
	ks.Kill(64)
	if ks.Dead(-1) || ks.Dead(64) {
		t.Fatal("out-of-range rank reported dead")
	}
	if want := uint64(1<<3 | 1<<0); ks.Mask() != want {
		t.Fatalf("out-of-range Kill changed mask to %#x", ks.Mask())
	}
}

func TestFaultKillRule(t *testing.T) {
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Peer: -1, Action: Kill, Prob: 1, Count: 1},
	}})
	defer cleanup()
	// The firing send dies with the rank, as does everything after it.
	if err := fn.Send(1, Header{}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := fn.Send(1, Header{}, []byte{2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(50 * time.Millisecond)
	got := make(chan struct{})
	go func() {
		if pkt, ok := rx.Recv(); ok {
			pkt.Release()
			close(got)
		}
	}()
	select {
	case <-got:
		t.Fatal("dead rank delivered a packet")
	case <-deadline:
	}
	if !fn.Kills().Dead(0) {
		t.Fatal("Kill rule did not mark rank 0 dead on the switch")
	}
	if fn.Stats().Kills.Load() != 1 {
		t.Fatalf("Kills = %d, want 1", fn.Stats().Kills.Load())
	}
	if fn.Stats().KillDrops.Load() != 2 {
		t.Fatalf("KillDrops = %d, want 2", fn.Stats().KillDrops.Load())
	}
	// A dead rank's Gets fail permanently: its registrations died with it.
	if err := fn.Get(1, 0, 0, nil, 0, 0); !errors.Is(err, ErrRankDead) {
		t.Fatalf("Get from dead self = %v, want ErrRankDead", err)
	}
}

func TestKillSharedSwitch(t *testing.T) {
	ks := NewKillSwitch()
	f := NewInproc(2, Config{})
	defer f.Close()
	fn0 := WrapFault(f.NIC(0), FaultPlan{Kills: ks})
	fn1 := WrapFault(f.NIC(1), FaultPlan{Kills: ks})
	defer fn0.Close()
	defer fn1.Close()

	// Before the kill, traffic flows.
	if err := fn1.Send(0, Header{}, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if got := recvN(t, fn0, 1, time.Second); got[0][0] != 9 {
		t.Fatal("pre-kill packet lost")
	}

	// Killing rank 0 through its own NIC is global: the survivor's sends
	// to it vanish (no error — death is silence) and its Gets fail.
	fn0.Kill()
	if !ks.Dead(0) {
		t.Fatal("Kill() did not reach the shared switch")
	}
	if err := fn1.Send(0, Header{}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if fn1.Stats().KillDrops.Load() != 1 {
		t.Fatalf("survivor KillDrops = %d, want 1", fn1.Stats().KillDrops.Load())
	}
	if err := fn1.Get(0, 0, 0, nil, 0, 0); !errors.Is(err, ErrRankDead) {
		t.Fatalf("survivor Get from dead rank = %v, want ErrRankDead", err)
	}
	// ErrRankDead is permanent, distinct from the transient link taxonomy.
	if err := fn1.Get(0, 0, 0, nil, 0, 0); errors.Is(err, ErrLinkDown) {
		t.Fatal("dead-rank Get classified as ErrLinkDown")
	}
}

func TestKillDropsHeldPacket(t *testing.T) {
	// A Reorder hold must die with the rank: kill while a packet is held,
	// then confirm nothing is delivered at Close (which flushes holds).
	f := NewInproc(2, Config{})
	defer f.Close()
	fn := WrapFault(f.NIC(0), FaultPlan{Seed: 1, Rules: []FaultRule{
		{Peer: -1, Action: Reorder, Prob: 1, Count: 1},
	}})
	if err := fn.Send(1, Header{}, []byte{5}); err != nil {
		t.Fatal(err)
	}
	fn.Kill()
	fn.Close()
	deadline := time.After(50 * time.Millisecond)
	got := make(chan struct{})
	go func() {
		if pkt, ok := f.NIC(1).Recv(); ok {
			pkt.Release()
			close(got)
		}
	}()
	select {
	case <-got:
		t.Fatal("held packet survived the kill")
	case <-deadline:
	}
}
