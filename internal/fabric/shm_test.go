//go:build linux || darwin

package fabric

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mpicd/internal/obs"
)

// shmMesh brings up an n-rank SHM fabric in a per-test session directory.
// Both endpoints live in this process, which is exactly how the unit
// tests want it: every cross-"process" path (rings, windows, sockets)
// still crosses real mmap'd files and unix sockets.
func shmMesh(t *testing.T, n int, cfg Config) []*SHM {
	t.Helper()
	dir := t.TempDir()
	nics := make([]*SHM, n)
	for i := range nics {
		nic, err := NewSHM(i, n, dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nics[i] = nic
	}
	t.Cleanup(func() {
		for _, nic := range nics {
			nic.Close()
		}
	})
	return nics
}

// waitRing drives traffic until the pair's ring handshake completes and
// frames flow through shared memory.
func waitRing(t *testing.T, from, to *SHM, dst int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for from.ringSends.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ring handshake never completed")
		}
		if err := from.Send(dst, Header{Kind: 5, Tag: 1, Total: 1}, []byte{0}); err != nil {
			t.Fatal(err)
		}
		pkt, ok := to.Recv()
		if !ok {
			t.Fatal("recv failed during ring warmup")
		}
		pkt.Release()
	}
}

func TestSHMSendRecvSpillThenRing(t *testing.T) {
	nics := shmMesh(t, 2, Config{})
	payload := make([]byte, 3000)
	fillPattern(payload, 4)
	// First send spills (handshake still in flight) but must deliver.
	hdr := Header{Kind: 5, Tag: 99, MsgID: 1, Total: 3000, Aux0: -7, Aux1: 12345}
	if err := nics[0].Send(1, hdr, payload); err != nil {
		t.Fatal(err)
	}
	pkt, ok := nics[1].Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	if pkt.From != 0 || pkt.Hdr != hdr || !bytes.Equal(pkt.Payload, payload) {
		t.Fatalf("spilled frame mismatch: From=%d %+v", pkt.From, pkt.Hdr)
	}
	pkt.Release()
	// Drive until the ring engages, then verify a frame crossing it.
	waitRing(t, nics[0], nics[1], 1)
	before := nics[0].ringSends.Load()
	if err := nics[0].Send(1, hdr, payload); err != nil {
		t.Fatal(err)
	}
	pkt, ok = nics[1].Recv()
	if !ok || pkt.From != 0 || pkt.Hdr != hdr || !bytes.Equal(pkt.Payload, payload) {
		t.Fatal("ring frame mismatch")
	}
	pkt.Release()
	if nics[0].ringSends.Load() != before+1 {
		t.Fatalf("frame did not cross the ring (sends %d -> %d)", before, nics[0].ringSends.Load())
	}
}

// TestSHMEagerOrderingAcrossSwitch floods sequenced frames through the
// socket→ring handoff; the switch protocol must keep the eager class in
// order even while the transition happens mid-stream.
func TestSHMEagerOrderingAcrossSwitch(t *testing.T) {
	nics := shmMesh(t, 2, Config{RingBytes: 4096})
	const msgs = 2000
	errc := make(chan error, 1)
	go func() {
		body := make([]byte, 64)
		for i := 0; i < msgs; i++ {
			fillPattern(body, byte(i))
			if err := nics[0].Send(1, Header{Kind: 5, Tag: uint64(i), Total: 64}, body); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	want := make([]byte, 64)
	for i := 0; i < msgs; i++ {
		pkt, ok := nics[1].Recv()
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		if pkt.Hdr.Tag != uint64(i) {
			t.Fatalf("eager class reordered: frame %d carries tag %d (ring sends %d, spills %d)",
				i, pkt.Hdr.Tag, nics[0].ringSends.Load(), nics[0].ringSpills.Load())
		}
		fillPattern(want, byte(i))
		if !bytes.Equal(pkt.Payload, want) {
			t.Fatalf("frame %d corrupted", i)
		}
		pkt.Release()
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if nics[0].ringSends.Load() == 0 {
		t.Fatal("stream never switched to the ring")
	}
}

// TestSHMRingBackpressure uses a tiny ring so the producer repeatedly
// fills it (exercising wraparound and full-ring blocking) while the
// consumer drains concurrently.
func TestSHMRingBackpressure(t *testing.T) {
	nics := shmMesh(t, 2, Config{RingBytes: 1024})
	waitRing(t, nics[0], nics[1], 1)
	const msgs = 3000
	errc := make(chan error, 1)
	go func() {
		body := make([]byte, 120)
		for i := 0; i < msgs; i++ {
			fillPattern(body, byte(i))
			if err := nics[0].Send(1, Header{Kind: 5, Tag: uint64(i), Total: 120}, body); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	want := make([]byte, 120)
	for i := 0; i < msgs; i++ {
		pkt, ok := nics[1].Recv()
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		if pkt.Hdr.Tag != uint64(i) || len(pkt.Payload) != 120 {
			t.Fatalf("frame %d: tag %d len %d", i, pkt.Hdr.Tag, len(pkt.Payload))
		}
		fillPattern(want, byte(i))
		if !bytes.Equal(pkt.Payload, want) {
			t.Fatalf("frame %d corrupted across ring wrap", i)
		}
		pkt.Release()
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestSHMSendFromRingPack(t *testing.T) {
	nics := shmMesh(t, 2, Config{})
	waitRing(t, nics[0], nics[1], 1)
	src, all := makeIov(t, 7, 1000, 13)
	before := nics[0].ringSends.Load()
	if n, err := nics[0].SendFrom(1, Header{Total: src.Size()}, src, 0, src.Size()); err != nil || n != src.Size() {
		t.Fatalf("SendFrom = %d, %v", n, err)
	}
	pkt, _ := nics[1].Recv()
	if !bytes.Equal(pkt.Payload, all) {
		t.Fatal("iov pack into ring mismatch")
	}
	pkt.Release()
	if nics[0].ringSends.Load() != before+1 {
		t.Fatal("SendFrom did not pack into the ring")
	}
}

func TestSHMFragmentedMessageSpills(t *testing.T) {
	nics := shmMesh(t, 2, Config{})
	waitRing(t, nics[0], nics[1], 1)
	// A fragment that is part of a larger message (payload < Total) must
	// use the socket regardless of ring state.
	body := make([]byte, 100)
	if err := nics[0].Send(1, Header{Kind: 5, Offset: 0, Total: 4000}, body); err != nil {
		t.Fatal(err)
	}
	if err := nics[0].Send(1, Header{Kind: 5, Offset: 100, Total: 4000}, body); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		pkt, ok := nics[1].Recv()
		if !ok {
			t.Fatal("fragment lost")
		}
		pkt.Release()
	}
}

func TestSHMSmallGetSocketPath(t *testing.T) {
	nics := shmMesh(t, 2, Config{FragSize: 1024})
	data := make([]byte, 10000) // below winThresh: socket response frames
	fillPattern(data, 8)
	key := nics[0].Register(Bytes(data))
	out := make([]byte, len(data))
	if err := nics[1].Get(0, key, 0, Bytes(out), 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("SHM small Get mismatch")
	}
	if nics[1].winPulls.Load() != 0 {
		t.Fatal("small Get used the window path")
	}
}

func TestSHMWindowedGet(t *testing.T) {
	// 16 KiB window → 8 KiB halves → a 300 KiB pull crosses ~38 chunks,
	// exercising half alternation and the ack pipeline.
	nics := shmMesh(t, 2, Config{WinBytes: 16 << 10})
	data := make([]byte, 300<<10)
	fillPattern(data, 9)
	key := nics[0].Register(Bytes(data))
	out := make([]byte, len(data))
	if err := nics[1].Get(0, key, 0, Bytes(out), 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("windowed Get mismatch")
	}
	if nics[1].winPulls.Load() != 1 {
		t.Fatalf("winPulls = %d, want 1", nics[1].winPulls.Load())
	}
	// Offset pull into a shifted sink region, reusing the same window.
	out2 := make([]byte, 80<<10)
	if err := nics[1].Get(0, key, 100<<10, Bytes(out2), 8<<10, 72<<10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2[8<<10:], data[100<<10:172<<10]) {
		t.Fatal("offset windowed Get mismatch")
	}
}

func TestSHMWindowedGetConcurrent(t *testing.T) {
	nics := shmMesh(t, 2, Config{WinBytes: 32 << 10})
	data := make([]byte, 512<<10)
	fillPattern(data, 11)
	key := nics[0].Register(Bytes(data))
	var wg sync.WaitGroup
	errs := make([]error, 4)
	outs := make([][]byte, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = make([]byte, 128<<10)
			errs[i] = nics[1].Get(0, key, int64(i)*(128<<10), Bytes(outs[i]), 0, 128<<10)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("get %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], data[i*(128<<10):(i+1)*(128<<10)]) {
			t.Fatalf("concurrent windowed get %d mismatch", i)
		}
	}
}

func TestSHMGetBadKey(t *testing.T) {
	nics := shmMesh(t, 2, Config{})
	out := make([]byte, 256<<10)
	if err := nics[1].Get(0, 999, 0, Bytes(out), 0, int64(len(out))); err == nil {
		t.Fatal("windowed Get with bad key should fail")
	}
}

func TestSHMThreeRankMesh(t *testing.T) {
	nics := shmMesh(t, 3, Config{})
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			hdr := Header{Tag: uint64(src*10 + dst), Total: 1}
			if err := nics[src].Send(dst, hdr, []byte{byte(src)}); err != nil {
				t.Fatalf("send %d->%d: %v", src, dst, err)
			}
		}
	}
	for dst := 0; dst < 3; dst++ {
		got := map[uint64]bool{}
		for i := 0; i < 2; i++ {
			pkt, ok := nics[dst].Recv()
			if !ok {
				t.Fatal("early close")
			}
			if int(pkt.Payload[0]) != pkt.From {
				t.Fatal("payload/source mismatch")
			}
			got[pkt.Hdr.Tag] = true
			pkt.Release()
		}
		if len(got) != 2 {
			t.Fatalf("rank %d received %d distinct messages", dst, len(got))
		}
	}
}

// TestSHMPoolQuiesce asserts no wire buffers leak once traffic drains —
// the ring poller and spill paths share the stream's counting pool.
func TestSHMPoolQuiesce(t *testing.T) {
	nics := shmMesh(t, 2, Config{})
	waitRing(t, nics[0], nics[1], 1)
	body := make([]byte, 500)
	for i := 0; i < 200; i++ {
		if err := nics[0].Send(1, Header{Kind: 5, Total: 500}, body); err != nil {
			t.Fatal(err)
		}
		pkt, ok := nics[1].Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		pkt.Release()
	}
	for _, nic := range nics {
		if n := nic.PoolOutstanding(); n != 0 {
			t.Fatalf("rank %d leaks %d pool buffers", nic.Rank(), n)
		}
	}
}

// TestSHMRingHandshakePeerDeath kills the consumer side of the eager
// ring inside the handshake window — after kindRingOpen goes out, before
// the kindRingSwitch marker ever does — and requires the producer to
// (a) stay off the ring, (b) fail fast once the death verdict lands, and
// (c) tear down leak-free: no openRing goroutine parked forever, no dial
// campaign outliving the world, no mapped segment left registered.
func TestSHMRingHandshakePeerDeath(t *testing.T) {
	snap := obs.TakeLeakSnapshot()
	cfg := Config{DialTimeout: 300 * time.Millisecond}

	// Window entry 1: the peer is dead before the open is even sendable,
	// so the handshake can never receive its ack.
	t.Run("open-unacked", func(t *testing.T) {
		dir := t.TempDir()
		a, err := NewSHM(0, 2, dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := NewSHM(1, 2, dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b.Close() // rank 1 dies before any traffic

		// Ring-eligible send: starts the handshake, spills to the broken
		// socket, and must surface an error within the dial window
		// instead of waiting on an ack that cannot come.
		err = a.Send(1, Header{Kind: 5, Tag: 1, Total: 1}, []byte{0})
		if err == nil {
			t.Fatal("send toward a dead peer mid-handshake succeeded")
		}
		if a.ringSends.Load() != 0 {
			t.Fatal("frames crossed a ring whose handshake never completed")
		}

		// The detector's verdict: every later send fails fast, not after
		// another dial window.
		a.DeclareRankDown(1)
		start := time.Now()
		err = a.Send(1, Header{Kind: 5, Tag: 2, Total: 1}, []byte{0})
		if err == nil {
			t.Fatal("send after DeclareRankDown succeeded")
		}
		if d := time.Since(start); d > 200*time.Millisecond {
			t.Fatalf("post-verdict send took %v, want fast failure", d)
		}
	})

	// Window entry 2: the handshake gets as far as the ack (the producer
	// holds a mapped, acknowledged ring) but the peer dies before the
	// switch marker is sent — the ring must be abandoned, not used.
	t.Run("acked-unswitch", func(t *testing.T) {
		dir := t.TempDir()
		a, err := NewSHM(0, 2, dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := NewSHM(1, 2, dir, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// First eligible send opens the handshake; drain it on the peer
		// so its control plane processes the open and acks.
		if err := a.Send(1, Header{Kind: 5, Tag: 1, Total: 1}, []byte{0}); err != nil {
			t.Fatal(err)
		}
		pkt, ok := b.Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		pkt.Release()
		a.outMu.Lock()
		o := a.outs[1]
		a.outMu.Unlock()
		if o == nil {
			t.Fatal("no handshake state after an eligible send")
		}
		deadline := time.Now().Add(5 * time.Second)
		for !o.ackd.Load() {
			if time.Now().After(deadline) {
				t.Fatal("ring ack never arrived")
			}
			time.Sleep(time.Millisecond)
		}
		o.mu.Lock()
		ready := o.ready
		o.mu.Unlock()
		if ready {
			t.Fatal("pair switched before the test could enter the window")
		}

		b.Close() // dies holding the window open: acked, never switched

		// The next send attempts the switch marker over the broken
		// socket; whether it errors immediately or after the link drop
		// is observed, the pair must never flip onto the ring.
		deadline = time.Now().Add(5 * time.Second)
		for {
			err = a.Send(1, Header{Kind: 5, Tag: 2, Total: 1}, []byte{0})
			if err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("sends kept succeeding toward a dead peer")
			}
			time.Sleep(10 * time.Millisecond)
		}
		if a.ringSends.Load() != 0 {
			t.Fatal("frames crossed the ring after the consumer died unswitched")
		}

		a.DeclareRankDown(1)
		start := time.Now()
		if err = a.Send(1, Header{Kind: 5, Tag: 3, Total: 1}, []byte{0}); err == nil {
			t.Fatal("send after DeclareRankDown succeeded")
		}
		if d := time.Since(start); d > 200*time.Millisecond {
			t.Fatalf("post-verdict send took %v, want fast failure", d)
		}
	})

	// Every goroutine the two worlds spawned — pollers, openRing
	// handshakes, dial campaigns — must be gone, and no wire buffer may
	// remain checked out.
	if err := snap.Check(0); err != nil {
		t.Fatal(err)
	}
}
