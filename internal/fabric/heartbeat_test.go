package fabric

import (
	"sync/atomic"
	"testing"
	"time"

	"mpicd/internal/obs"
)

// drain pumps a detector's Recv loop (answering pings, timing pongs)
// until the underlying fabric closes, discarding data packets.
func drain(d *Detector) {
	go func() {
		for {
			pkt, ok := d.Recv()
			if !ok {
				return
			}
			pkt.Release()
		}
	}()
}

func TestDetectorConfigDefaults(t *testing.T) {
	cfg := NewDetectorConfig(DetectorConfig{Period: 10 * time.Millisecond})
	if cfg.SuspectAfter != 40*time.Millisecond {
		t.Fatalf("SuspectAfter = %v, want 4×Period", cfg.SuspectAfter)
	}
	if cfg.DeadAfter != 100*time.Millisecond {
		t.Fatalf("DeadAfter = %v, want 10×Period", cfg.DeadAfter)
	}
	// DeadAfter is never allowed below SuspectAfter.
	cfg = NewDetectorConfig(DetectorConfig{
		Period: time.Millisecond, SuspectAfter: 50 * time.Millisecond, DeadAfter: time.Millisecond,
	})
	if cfg.DeadAfter < cfg.SuspectAfter {
		t.Fatalf("DeadAfter %v < SuspectAfter %v", cfg.DeadAfter, cfg.SuspectAfter)
	}
	// Zero Period stays disabled (no defaulting).
	if cfg := NewDetectorConfig(DetectorConfig{}); cfg.SuspectAfter != 0 || cfg.DeadAfter != 0 {
		t.Fatal("disabled config grew thresholds")
	}
}

// TestDetectorPingPong verifies the live path: two detectors over a
// quiet fabric keep each other alive purely through probes, and the
// pong side times round trips into the RTT histogram.
func TestDetectorPingPong(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	reg := obs.New(0).Registry
	cfg := DetectorConfig{Period: 2 * time.Millisecond, Obs: reg}
	d0 := NewDetector(f.NIC(0), cfg)
	d1 := NewDetector(f.NIC(1), DetectorConfig{Period: 2 * time.Millisecond})
	drain(d0)
	drain(d1)
	d0.Start()
	d1.Start()

	rtt := reg.Histogram("hb.r0.rtt_ns")
	deadline := time.Now().Add(2 * time.Second)
	for rtt.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if rtt.Count() == 0 {
		t.Fatal("no pong round trips observed")
	}
	if d0.PeerSuspected(1) || d0.PeerDead(1) || d1.PeerSuspected(0) || d1.PeerDead(0) {
		t.Fatal("responsive peer suspected or declared dead")
	}
	d0.Close()
	d1.Close()
}

// TestDetectorDeclaresDead verifies the death path: a peer whose
// traffic a shared kill switch swallows goes silent, crosses
// SuspectAfter then DeadAfter, and the OnDead callback fires exactly
// once. Death is sticky — late activity cannot resurrect the peer.
func TestDetectorDeclaresDead(t *testing.T) {
	ks := NewKillSwitch()
	f := NewInproc(2, Config{})
	defer f.Close()
	// Rank 0's pings to the dead rank vanish sender-side, so the prober
	// can never block on an undrained inbox.
	fn := WrapFault(f.NIC(0), FaultPlan{Kills: ks})
	d := NewDetector(fn, DetectorConfig{
		Period:       2 * time.Millisecond,
		SuspectAfter: 6 * time.Millisecond,
		DeadAfter:    20 * time.Millisecond,
	})
	var deaths atomic.Int64
	dead := make(chan int, 4)
	d.OnDead(func(rank int) {
		deaths.Add(1)
		dead <- rank
	})
	drain(d)
	ks.Kill(1)
	d.Start()
	defer d.Close()

	select {
	case rank := <-dead:
		if rank != 1 {
			t.Fatalf("OnDead(%d), want rank 1", rank)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("silent peer never declared dead")
	}
	if !d.PeerDead(1) || d.PeerSuspected(1) {
		t.Fatal("state machine inconsistent after death")
	}
	if n := d.nDead.Load(); n != 1 {
		t.Fatalf("peers_dead gauge = %d, want 1", n)
	}
	if n := d.nSuspect.Load(); n != 0 {
		t.Fatalf("peers_suspected gauge = %d, want 0 (suspicion resolved into death)", n)
	}
	// Sticky: observing late activity must not resurrect the peer.
	d.observe(1, time.Now().UnixNano())
	if !d.PeerDead(1) {
		t.Fatal("late packet resurrected a dead peer")
	}
	time.Sleep(10 * time.Millisecond) // more prober ticks must not re-fire
	if deaths.Load() != 1 {
		t.Fatalf("OnDead fired %d times, want exactly 1", deaths.Load())
	}
}

func TestDetectorDeclareDeadIdempotent(t *testing.T) {
	f := NewInproc(3, Config{})
	defer f.Close()
	d := NewDetector(f.NIC(0), DetectorConfig{Period: time.Hour}) // never probes
	var deaths atomic.Int64
	d.OnDead(func(int) { deaths.Add(1) })
	d.DeclareDead(1)
	d.DeclareDead(1)
	d.DeclareDead(0)  // self: ignored
	d.DeclareDead(-1) // out of range: ignored
	d.DeclareDead(7)
	if deaths.Load() != 1 {
		t.Fatalf("OnDead fired %d times, want 1", deaths.Load())
	}
	if !d.PeerDead(1) || d.PeerDead(0) || d.PeerDead(2) {
		t.Fatal("DeclareDead marked the wrong peers")
	}
	d.Close()
}

// TestDetectorPiggyback verifies that ordinary data traffic refreshes
// liveness without probes: with an effectively infinite probe period the
// only thing keeping the peer alive is the inbound data path.
func TestDetectorPiggyback(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	d := NewDetector(f.NIC(0), DetectorConfig{
		Period:       20 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    time.Hour, // this test is about suspicion only
	})
	defer d.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				_ = f.NIC(1).Send(0, Header{Kind: 1}, []byte{1})
			}
		}
	}()
	go func() {
		for {
			pkt, ok := d.Recv()
			if !ok {
				return
			}
			pkt.Release()
		}
	}()
	d.Start()
	time.Sleep(120 * time.Millisecond)
	if d.PeerSuspected(1) || d.PeerDead(1) {
		t.Fatal("peer with steady data traffic was suspected")
	}
}
