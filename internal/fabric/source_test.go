package fabric

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func fillPattern(b []byte, seed byte) {
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
}

func TestBytesSourceReadAt(t *testing.T) {
	b := make(Bytes, 100)
	fillPattern(b, 7)
	dst := make([]byte, 40)
	n, err := b.ReadAt(dst, 30)
	if err != nil || n != 40 {
		t.Fatalf("ReadAt = %d, %v; want 40, nil", n, err)
	}
	if !bytes.Equal(dst, b[30:70]) {
		t.Fatal("ReadAt content mismatch")
	}
	// Short read at the end returns io.EOF.
	n, err = b.ReadAt(dst, 80)
	if n != 20 || err != io.EOF {
		t.Fatalf("short ReadAt = %d, %v; want 20, io.EOF", n, err)
	}
	// Out of range.
	if _, err := b.ReadAt(dst, 101); err == nil {
		t.Fatal("ReadAt past end should error")
	}
	if _, err := b.ReadAt(dst, -1); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestBytesSinkWriteAt(t *testing.T) {
	b := make(Bytes, 50)
	src := make([]byte, 20)
	fillPattern(src, 3)
	n, err := b.WriteAt(src, 10)
	if err != nil || n != 20 {
		t.Fatalf("WriteAt = %d, %v; want 20, nil", n, err)
	}
	if !bytes.Equal(b[10:30], src) {
		t.Fatal("WriteAt content mismatch")
	}
	if _, err := b.WriteAt(src, 40); err != io.ErrShortWrite {
		t.Fatalf("overflowing WriteAt err = %v; want ErrShortWrite", err)
	}
}

func TestBytesWindow(t *testing.T) {
	b := make(Bytes, 10)
	w, ok := b.Window(4, 100)
	if !ok || len(w) != 6 {
		t.Fatalf("Window(4,100) = len %d, %v; want 6, true", len(w), ok)
	}
	if _, ok := b.Window(11, 1); ok {
		t.Fatal("Window past end should fail")
	}
}

func makeIov(t *testing.T, lens ...int) (*Iov, []byte) {
	t.Helper()
	var regions [][]byte
	var all []byte
	for i, n := range lens {
		r := make([]byte, n)
		fillPattern(r, byte(i+1))
		regions = append(regions, r)
		all = append(all, r...)
	}
	return NewIov(regions), all
}

func TestIovReadWriteAt(t *testing.T) {
	v, all := makeIov(t, 5, 0, 17, 3, 100)
	if v.Size() != int64(len(all)) {
		t.Fatalf("Size = %d; want %d", v.Size(), len(all))
	}
	// Read the whole thing in odd-sized chunks.
	got := make([]byte, len(all))
	for off := 0; off < len(all); off += 7 {
		end := off + 7
		if end > len(all) {
			end = len(all)
		}
		n, err := v.ReadAt(got[off:end], int64(off))
		if err != nil || n != end-off {
			t.Fatalf("ReadAt(%d) = %d, %v", off, n, err)
		}
	}
	if !bytes.Equal(got, all) {
		t.Fatal("gather mismatch")
	}
	// Scatter back into a fresh iovec of the same shape.
	w, _ := makeIov(t, 5, 0, 17, 3, 100)
	for _, r := range w.Regions() {
		for i := range r {
			r[i] = 0
		}
	}
	for off := 0; off < len(all); off += 11 {
		end := off + 11
		if end > len(all) {
			end = len(all)
		}
		if _, err := w.WriteAt(all[off:end], int64(off)); err != nil {
			t.Fatalf("WriteAt(%d): %v", off, err)
		}
	}
	got2 := make([]byte, len(all))
	if _, err := w.ReadAt(got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, all) {
		t.Fatal("scatter mismatch")
	}
}

func TestIovWindowWalk(t *testing.T) {
	v, all := makeIov(t, 8, 1, 0, 9, 2)
	var walked []byte
	off := int64(0)
	for off < v.Size() {
		w, ok := v.Window(off, 1000)
		if !ok {
			t.Fatalf("Window(%d) failed", off)
		}
		if len(w) == 0 {
			t.Fatalf("empty window at %d", off)
		}
		walked = append(walked, w...)
		off += int64(len(w))
	}
	if !bytes.Equal(walked, all) {
		t.Fatal("window walk mismatch")
	}
	// Window cap is honored.
	w, ok := v.Window(0, 3)
	if !ok || len(w) != 3 {
		t.Fatalf("capped window len = %d", len(w))
	}
}

// nonDirectSource wraps a Bytes to hide its direct window, forcing the
// generic (ReadAt) path.
type nonDirectSource struct{ b Bytes }

func (s nonDirectSource) Size() int64                             { return s.b.Size() }
func (s nonDirectSource) ReadAt(d []byte, off int64) (int, error) { return s.b.ReadAt(d, off) }

type nonDirectSink struct{ b Bytes }

func (s nonDirectSink) Size() int64                              { return s.b.Size() }
func (s nonDirectSink) WriteAt(d []byte, off int64) (int, error) { return s.b.WriteAt(d, off) }

func TestConcatSourceMixedParts(t *testing.T) {
	a := make(Bytes, 13)
	fillPattern(a, 1)
	b := make(Bytes, 29)
	fillPattern(b, 2)
	c := make(Bytes, 7)
	fillPattern(c, 3)
	want := append(append(append([]byte{}, a...), b...), c...)

	src := NewConcatSource(a, nonDirectSource{b}, c)
	if src.Size() != int64(len(want)) {
		t.Fatalf("Size = %d; want %d", src.Size(), len(want))
	}
	got := make([]byte, len(want))
	for off := 0; off < len(want); off += 5 {
		end := off + 5
		if end > len(want) {
			end = len(want)
		}
		n, err := src.ReadAt(got[off:end], int64(off))
		if err != nil || n != end-off {
			t.Fatalf("ReadAt(%d) = %d, %v", off, n, err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("concat read mismatch")
	}
	// Direct part windows work; the non-direct middle part reports !ok.
	if _, ok := src.Window(0, 5); !ok {
		t.Fatal("window over direct head should succeed")
	}
	if _, ok := src.Window(14, 5); ok {
		t.Fatal("window over generic middle should fail")
	}
	if w, ok := src.Window(int64(len(a)+len(b)), 100); !ok || len(w) != len(c) {
		t.Fatalf("tail window = len %d, %v", len(w), ok)
	}
}

func TestConcatSinkSequentialFlag(t *testing.T) {
	a := make(Bytes, 4)
	b := make(Bytes, 4)
	if NewConcatSink(false, a, b).Sequential() {
		t.Fatal("plain concat should not be sequential")
	}
	if !NewConcatSink(true, a, b).Sequential() {
		t.Fatal("sequential concat must report Sequential")
	}
	inner := NewConcatSink(true, a)
	outer := NewConcatSink(false, inner, b)
	if !outer.Sequential() {
		t.Fatal("sequential requirement must propagate through nesting")
	}
}

func TestConcatSinkWrite(t *testing.T) {
	a := make(Bytes, 10)
	b := make(Bytes, 20)
	sink := NewConcatSink(false, a, nonDirectSink{b})
	src := make([]byte, 30)
	fillPattern(src, 9)
	for off := 0; off < 30; off += 4 {
		end := off + 4
		if end > 30 {
			end = 30
		}
		if _, err := sink.WriteAt(src[off:end], int64(off)); err != nil {
			t.Fatalf("WriteAt(%d): %v", off, err)
		}
	}
	if !bytes.Equal(a, src[:10]) || !bytes.Equal([]byte(b), src[10:]) {
		t.Fatal("concat sink scatter mismatch")
	}
}

// Property: for any region shape and chunk walk, Iov gathers the exact
// concatenation of its regions.
func TestIovGatherProperty(t *testing.T) {
	f := func(lens []uint8, chunk uint8, seed int64) bool {
		if len(lens) > 12 {
			lens = lens[:12]
		}
		rng := rand.New(rand.NewSource(seed))
		var regions [][]byte
		var all []byte
		for _, l := range lens {
			r := make([]byte, int(l)%64)
			rng.Read(r)
			regions = append(regions, r)
			all = append(all, r...)
		}
		v := NewIov(regions)
		step := int(chunk)%13 + 1
		got := make([]byte, len(all))
		for off := 0; off < len(all); off += step {
			end := off + step
			if end > len(all) {
				end = len(all)
			}
			if _, err := v.ReadAt(got[off:end], int64(off)); err != nil {
				return false
			}
		}
		return bytes.Equal(got, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: pull moves bytes correctly for every combination of direct and
// generic endpoints and any bounce size.
func TestPullProperty(t *testing.T) {
	f := func(n uint16, bounceSize uint8, srcDirect, sinkDirect bool, seed int64) bool {
		size := int(n) % 5000
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, size)
		rng.Read(data)
		out := make([]byte, size)
		var src Source = Bytes(data)
		if !srcDirect {
			src = nonDirectSource{Bytes(data)}
		}
		var sink Sink = Bytes(out)
		if !sinkDirect {
			sink = nonDirectSink{Bytes(out)}
		}
		bounce := make([]byte, int(bounceSize)%97+1)
		if err := pull(src, 0, sink, 0, int64(size), bounce, nil); err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPullOffsets(t *testing.T) {
	data := make([]byte, 100)
	fillPattern(data, 5)
	out := make([]byte, 200)
	bounce := make([]byte, 16)
	if err := pull(Bytes(data), 20, Bytes(out), 50, 60, bounce, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[50:110], data[20:80]) {
		t.Fatal("offset pull mismatch")
	}
	for i, b := range out[:50] {
		if b != 0 {
			t.Fatalf("byte %d touched outside the window", i)
		}
	}
}

func TestPullIntoIov(t *testing.T) {
	data := make([]byte, 64)
	fillPattern(data, 11)
	dst, _ := makeIov(t, 10, 20, 34)
	for _, r := range dst.Regions() {
		for i := range r {
			r[i] = 0
		}
	}
	bounce := make([]byte, 8)
	if err := pull(Bytes(data), 0, dst, 0, 64, bounce, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if _, err := dst.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pull into iov mismatch")
	}
}
