package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Reserved header kinds used internally by byte-stream providers for the
// Get (RDMA-read emulation) protocol. Transports must keep their own kinds
// below KindFabricReserved; within the reserved range the heartbeat
// detector owns the low values (0xF0..0xF7), providers the high ones —
// these frames are consumed by the provider's read loop and must never
// shadow detector traffic that has to reach Recv.
const (
	kindGetReq  Kind = 0xF8
	kindGetResp Kind = 0xF9
	kindGetErr  Kind = 0xFA
	// 0xFB..0xFF belong to provider extensions routed through the stream
	// core's ctrl hook (the SHM provider's ring/window control frames).
	kindProviderCtrlMin Kind = 0xFB
)

// Handshake verdict bytes: a dialer writes its 4-byte rank hello and
// reads one verdict byte before using the connection.
const (
	helloAccept = 0x5A // connection installed on the accept side
	helloYield  = 0x59 // acceptor's own (canonical) dial is in flight; wait for it
)

// stream is the shared core of the byte-stream providers (TCP and the
// SHM provider's unix-socket control/spill plane): length-prefixed
// frames over net.Conn links, gather writes, a request/response Get
// protocol, lazy connection establishment and redial.
//
// Connection model: links are established on demand — the first send or
// Get toward a peer dials it (Config.EagerMesh restores the old
// dial-everything-at-startup behaviour). Either side may initiate; at
// most one connection per pair survives. A dialer announces its rank
// (hello) and waits for a verdict byte: the acceptor either installs the
// connection (helloAccept) or, when its own dial to that peer is already
// in flight and it is the canonical dialer (the higher rank), tells the
// lower rank to yield and wait for the inbound connection (helloYield) —
// the deterministic tie-break that collapses simultaneous dials.
//
// Broken connections are redialed with exponential backoff by the higher
// rank; while a link is down, sends to and Gets from that peer fail with
// ErrLinkDown so the transport layer can retry.
type stream struct {
	cfg     Config
	rank    int
	size    int
	network string // "tcp" or "unix"
	pool    *bufPool

	ln    net.Listener
	inbox chan *Packet
	done  chan struct{}
	once  sync.Once

	// ctrl, when non-nil, intercepts provider-extension frames (kinds >=
	// kindProviderCtrlMin) before they reach the inbox. It runs on the
	// connection's read goroutine and owns the payload's putback.
	ctrl func(conn *streamConn, hdr Header, payload []byte, putback func())
	// onGetReq, when non-nil, gets first refusal on inbound Get requests;
	// returning true claims the request (the SHM provider serves
	// window-flagged pulls through shared memory instead of the socket).
	onGetReq func(conn *streamConn, hdr Header) bool
	// onConnDrop, when non-nil, is told every time a connection to a peer
	// broke (read failure, write failure, or teardown of a replaced
	// socket). The SHM provider keys its per-pair shared-memory
	// establishment to the socket generation through this hook: a peer
	// that drops and re-dials (revival of a respawned rank) has forgotten
	// the pair's rings, and a producer that kept writing into the old
	// segment would black-hole everything it sends. Invoked on a fresh
	// goroutine — drops fire from send paths that hold provider pair
	// locks. Set before join, like ctrl.
	onConnDrop func(peer int)

	// hookMu guards peerDown: the hook is installed after construction
	// (the worker layer wires it into the liveness detector) while accept
	// and read goroutines may already be reporting link events.
	hookMu   sync.Mutex
	peerDown func(peer int, hard bool)

	// connsMu guards conns, addrs, dialing and everConn: accept-side
	// installs, dial-side installs, lazy establishment and disconnect
	// teardown all mutate connection state from different goroutines.
	connsMu  sync.RWMutex
	conns    []*streamConn
	addrs    []string // peer addresses; nil until Join
	dialing  map[int]bool
	everConn []bool // a connection to peer succeeded at least once
	// down marks ranks the layer above has declared dead
	// (DeclareRankDown). Sends and dial campaigns toward a down rank
	// fail fast instead of burning a dial window: the synchronous post
	// path otherwise strands its caller for DialTimeout inside a
	// first-contact wait that no death verdict can interrupt.
	// ReviveRank clears the mark.
	down []bool
	// draining holds write-dropped connections whose read side is still
	// delivering kernel-buffered frames; Close closes them so a blocked
	// read unsticks at shutdown.
	draining map[*streamConn]struct{}

	// epochMu guards peerEpochs: the highest incarnation number each
	// rank has announced in a connection handshake. A newly announced
	// higher epoch from a rank this side ever communicated with is hard
	// death evidence for that rank's previous incarnation (see
	// Config.Epoch).
	epochMu    sync.Mutex
	peerEpochs []uint32

	regMu   sync.RWMutex
	regs    map[uint64]Source
	nextKey atomic.Uint64

	getMu   sync.Mutex
	gets    map[uint64]*streamGet
	nextGet atomic.Uint64

	// Link-health counters, exported as gauges when Config.Obs is set.
	connDrops    atomic.Int64 // connections torn down after a socket failure
	redials      atomic.Int64 // redial campaigns started
	redialsOK    atomic.Int64 // redial campaigns that re-established the link
	checksumErrs atomic.Int64 // Get frames rejected by CRC verification
}

type streamConn struct {
	peer int
	c    net.Conn
	wmu  sync.Mutex
}

type streamGet struct {
	peer    int
	sink    Sink
	sinkOff int64 // sink offset corresponding to remote offset 0 of this get
	left    int64
	done    chan error
}

// Dial defaults applied when Config leaves the knobs zero. These used to
// be mutable package globals (racy; removed) — per-endpoint behaviour is
// configured through Config.DialTimeout / Config.DialBackoff.
const defaultDialTimeout = 30 * time.Second

var defaultDialBackoff = Backoff{Base: 20 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.25}

// newStream binds the local endpoint (bind may carry an ephemeral port
// such as "127.0.0.1:0" — the bound address is reported by Addr) and
// starts accepting. Peer addresses arrive later through Join.
func newStream(network string, rank, size int, bind string, cfg Config) (*stream, error) {
	if rank < 0 || rank >= size {
		return nil, rangeErr("local", rank, size)
	}
	cfg = NewConfig(cfg)
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.DialBackoff.Base <= 0 {
		cfg.DialBackoff = defaultDialBackoff
	}
	s := &stream{
		cfg:        cfg,
		rank:       rank,
		size:       size,
		network:    network,
		pool:       newBufPool(cfg.FragSize),
		conns:      make([]*streamConn, size),
		dialing:    make(map[int]bool),
		everConn:   make([]bool, size),
		down:       make([]bool, size),
		peerEpochs: make([]uint32, size),
		draining:   make(map[*streamConn]struct{}),
		inbox:      make(chan *Packet, cfg.InboxDepth),
		done:       make(chan struct{}),
		regs:       make(map[uint64]Source),
		gets:       make(map[uint64]*streamGet),
	}
	if network == "unix" && bind != "" {
		// A respawned process re-binds its dead incarnation's socket path,
		// and the stale file would fail the bind with EADDRINUSE. The path
		// lives in the launcher-owned job directory, so removing it cannot
		// race another live listener.
		_ = os.Remove(bind)
	}
	ln, err := net.Listen(network, bind)
	if err != nil {
		return nil, fmt.Errorf("fabric: rank %d listen %s %s: %w", rank, network, bind, err)
	}
	s.ln = ln
	if reg := cfg.Obs; reg != nil {
		p := func(name string) string { return fmt.Sprintf("fabric.r%d.%s", rank, name) }
		reg.GaugeFunc(p("tcp_conn_drops"), s.connDrops.Load)
		reg.GaugeFunc(p("tcp_redials"), s.redials.Load)
		reg.GaugeFunc(p("tcp_redials_ok"), s.redialsOK.Load)
		reg.GaugeFunc(p("tcp_checksum_errs"), s.checksumErrs.Load)
		reg.GaugeFunc(p("pool_outstanding"), s.pool.Outstanding)
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound local address (the concrete port when bind used
// ":0"), for the bootstrap exchange.
func (s *stream) Addr() string { return s.ln.Addr().String() }

// join provides the full peer address table. With Config.EagerMesh set it
// dials every lower rank and blocks until the full mesh is up (the
// pre-lazy behaviour existing tests rely on); otherwise it returns
// immediately and links come up on first use.
func (s *stream) join(addrs []string) error {
	if len(addrs) != s.size {
		return fmt.Errorf("fabric: rank %d join with %d addresses, world size %d", s.rank, len(addrs), s.size)
	}
	s.connsMu.Lock()
	s.addrs = append([]string(nil), addrs...)
	s.connsMu.Unlock()
	if !s.cfg.EagerMesh {
		return nil
	}
	// Eager full mesh: rank i accepts from every higher rank and dials
	// every lower rank, concurrently.
	errc := make(chan error, s.rank)
	for peer := 0; peer < s.rank; peer++ {
		go func(peer int) {
			errc <- s.dialPeer(peer)
		}(peer)
	}
	deadline := time.Now().Add(s.cfg.DialTimeout)
	for {
		select {
		case err := <-errc:
			if err != nil {
				s.Close()
				return err
			}
			continue
		default:
		}
		if missing := s.missingPeers(); len(missing) == 0 {
			return nil
		} else if time.Now().After(deadline) {
			s.Close()
			return fmt.Errorf("fabric: rank %d mesh incomplete after %v: missing peer(s) %v",
				s.rank, s.cfg.DialTimeout, missing)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// missingPeers lists every rank the full mesh still lacks a connection to.
func (s *stream) missingPeers() []int {
	s.connsMu.RLock()
	defer s.connsMu.RUnlock()
	var missing []int
	for peer, conn := range s.conns {
		if peer != s.rank && conn == nil {
			missing = append(missing, peer)
		}
	}
	return missing
}

// SetPeerDownHook installs a callback for link-level peer-death evidence.
// It fires with hard=false when an established connection to peer breaks
// (EOF or a socket write error — ambiguous: the peer may be alive behind
// a flaky link) and with hard=true when a redial to a peer this side had
// connected to before is refused outright (connect-refused / vanished
// unix socket: the peer's listener lives exactly as long as its process,
// so refusal after a successful connection means the process is gone).
// Callbacks run on transport goroutines and must not block.
func (s *stream) SetPeerDownHook(fn func(peer int, hard bool)) {
	s.hookMu.Lock()
	s.peerDown = fn
	s.hookMu.Unlock()
}

// notifyPeerDown reports link evidence to the installed hook, if any.
func (s *stream) notifyPeerDown(peer int, hard bool) {
	select {
	case <-s.done:
		return
	default:
	}
	s.hookMu.Lock()
	fn := s.peerDown
	s.hookMu.Unlock()
	if fn != nil {
		fn(peer, hard)
	}
}

// isConnRefused reports whether a dial error means "nobody is listening":
// ECONNREFUSED for TCP and bound-but-dead unix sockets, ENOENT for a
// unix socket path that has been removed.
func isConnRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ENOENT)
}

// UpdateAddr replaces the stored address for one peer (a respawned rank
// rejoining a TCP world listens on a fresh ephemeral port; SHM addresses
// are deterministic and never change).
func (s *stream) UpdateAddr(peer int, addr string) error {
	if peer < 0 || peer >= s.size {
		return rangeErr("peer", peer, s.size)
	}
	s.connsMu.Lock()
	defer s.connsMu.Unlock()
	if s.addrs == nil {
		return fmt.Errorf("fabric: rank %d has no address table yet (Join not called)", s.rank)
	}
	s.addrs[peer] = addr
	return nil
}

// DeclareRankDown records the transport layer's death verdict for a
// rank: the stale connection (if any) is closed, and every send or dial
// campaign toward the rank fails fast until ReviveRank. Without this, a
// first-contact send posted toward a dead rank blocks its caller inside
// conn()'s dial wait for the full DialTimeout — a wait the worker's
// DeclarePeerFailed cannot interrupt because the blocked goroutine is
// below the transport, inside the provider.
func (s *stream) DeclareRankDown(rank int) {
	if rank < 0 || rank >= s.size || rank == s.rank {
		return
	}
	s.connsMu.Lock()
	s.down[rank] = true
	old := s.conns[rank]
	s.conns[rank] = nil
	s.connsMu.Unlock()
	if old != nil {
		old.c.Close()
		connTrace(s.rank, rank, cevDropStale, 0)
	}
}

// ReviveRank forgets all connection state toward a peer so a respawned
// process can be admitted under the same rank: the stale socket (still
// carrying the dead incarnation's half-open state) is closed, and
// everConn is cleared so the next send performs a patient first-dial —
// the replacement may still be booting — instead of the broken-link
// fast-fail.
func (s *stream) ReviveRank(peer int) {
	if peer < 0 || peer >= s.size || peer == s.rank {
		return
	}
	s.connsMu.Lock()
	old := s.conns[peer]
	s.conns[peer] = nil
	s.everConn[peer] = false
	s.down[peer] = false
	s.connsMu.Unlock()
	if old != nil {
		old.c.Close()
	}
	connTrace(s.rank, peer, cevRevive, 0)
}

// acceptLoop installs inbound connections (lazy dials, eager mesh and
// redials) for the provider's lifetime.
func (s *stream) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		go s.handleHello(c)
	}
}

// handleHello validates an inbound connection's rank announcement,
// decides the simultaneous-dial tie-break and answers with a verdict
// byte. Decision and install share one critical section so concurrent
// hellos from the same peer serialize.
func (s *stream) handleHello(c net.Conn) {
	_ = c.SetDeadline(time.Now().Add(10 * time.Second))
	var hello [8]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		c.Close()
		return
	}
	peer := int(binary.LittleEndian.Uint32(hello[:4]))
	if peer == s.rank || peer < 0 || peer >= s.size {
		connTrace(s.rank, -1, cevHelloReject, int64(peer))
		c.Close()
		return
	}
	s.observeEpoch(peer, binary.LittleEndian.Uint32(hello[4:]))
	s.connsMu.Lock()
	select {
	case <-s.done:
		s.connsMu.Unlock()
		c.Close()
		return
	default:
	}
	if s.rank > peer && (s.dialing[peer] || s.conns[peer] != nil) {
		// Simultaneous dial: this side is the canonical dialer (higher
		// rank) and either has a dial in flight or already landed it —
		// tell the peer to wait for that connection instead of
		// installing a second one. The already-landed case matters:
		// accepting here would replace a healthy socket and discard
		// whatever the peer had buffered on it. If the peer dialed
		// because the link broke on its side, this side's read loop is
		// about to find out too (it is one socket); the teardown clears
		// conns[peer] and the peer's next dial attempt is accepted.
		s.connsMu.Unlock()
		_, _ = c.Write(s.verdict(helloYield))
		c.Close()
		connTrace(s.rank, peer, cevHelloYield, 0)
		return
	}
	// Accept (replacing any stale predecessor). The verdict is written
	// inside the critical section so no frame can be written to the
	// published connection ahead of the verdict byte.
	if _, err := c.Write(s.verdict(helloAccept)); err != nil {
		s.connsMu.Unlock()
		c.Close()
		return
	}
	_ = c.SetDeadline(time.Time{})
	conn := s.installConnLocked(peer, c)
	s.connsMu.Unlock()
	go s.readLoop(conn)
}

// dialPeer connects to a peer, retrying with backoff until
// Config.DialTimeout. Used for lazy establishment, eager mesh and
// redial. A helloYield verdict makes it wait for the peer's inbound
// connection instead.
func (s *stream) dialPeer(peer int) error {
	readAddr := func() string {
		s.connsMu.RLock()
		defer s.connsMu.RUnlock()
		if s.addrs == nil {
			return ""
		}
		return s.addrs[peer]
	}
	if readAddr() == "" {
		return fmt.Errorf("fabric: rank %d has no address for rank %d (not joined)", s.rank, peer)
	}
	rng := rand.New(rand.NewSource(int64(s.rank)<<20 ^ int64(peer)))
	deadline := time.Now().Add(s.cfg.DialTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		select {
		case <-s.done:
			return ErrClosed
		default:
		}
		s.connsMu.RLock()
		dead := s.down[peer]
		s.connsMu.RUnlock()
		if dead {
			// The rank was declared dead mid-campaign: abandon it. A
			// leftover campaign must not keep dialing — its refusals
			// would read as fresh hard evidence against the rank's next
			// incarnation once a replacement reconnects.
			return fmt.Errorf("%w: rank %d declared down", ErrLinkDown, peer)
		}
		// Re-read the address every attempt: a campaign started against a
		// dead incarnation must follow an UpdateAddr to the replacement's
		// listener mid-flight, not burn its whole window on the stale port
		// (stranding every queued send toward the revived rank behind it).
		addr := readAddr()
		c, err := net.DialTimeout(s.network, addr, time.Second)
		if err != nil && isConnRefused(err) && addr == readAddr() {
			// Refused means no listener at the address. If this side ever
			// held a connection to the peer, its listener existed — and a
			// listener lives exactly as long as its process, so refusal is
			// hard evidence of process death (soft only otherwise: a first
			// dial may simply be racing the peer's startup). The verdict
			// only stands if the address is still current — a refusal at a
			// port the rank has since been repointed away from describes
			// the dead predecessor, not the revived replacement.
			s.connsMu.RLock()
			ever := s.everConn[peer]
			s.connsMu.RUnlock()
			if ever {
				s.notifyPeerDown(peer, true)
			}
		}
		if err == nil {
			verdict, herr := s.sayHello(c, peer)
			switch {
			case herr != nil:
				err = herr
				c.Close()
			case verdict == helloAccept:
				s.connsMu.Lock()
				conn := s.installConnLocked(peer, c)
				s.connsMu.Unlock()
				go s.readLoop(conn)
				connTrace(s.rank, peer, cevDialOK, 0)
				return nil
			case verdict == helloYield:
				// The peer's own dial is on its way; wait for the install.
				c.Close()
				if s.awaitConn(peer, deadline) {
					return nil
				}
				err = fmt.Errorf("fabric: rank %d yielded to rank %d's dial, which never arrived", s.rank, peer)
			default:
				err = fmt.Errorf("fabric: rank %d: bad hello verdict %#x from rank %d", s.rank, verdict, peer)
				c.Close()
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			connTrace(s.rank, peer, cevDialFail, 0)
			return fmt.Errorf("fabric: rank %d: peer rank %d unreachable at %q after %v: %w (%v)",
				s.rank, peer, addr, s.cfg.DialTimeout, ErrLinkDown, lastErr)
		}
		d := s.cfg.DialBackoff.Delay(attempt, rng)
		select {
		case <-s.done:
			return ErrClosed
		case <-time.After(d):
		}
	}
}

// sayHello announces the local rank and epoch on a fresh connection and
// reads the acceptor's verdict (one verdict byte plus the acceptor's own
// epoch — the reverse direction of the incarnation exchange, needed
// because only the dialing side sends a hello).
func (s *stream) sayHello(c net.Conn, peer int) (byte, error) {
	_ = c.SetDeadline(time.Now().Add(10 * time.Second))
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:4], uint32(s.rank))
	binary.LittleEndian.PutUint32(hello[4:], s.cfg.Epoch)
	if _, err := c.Write(hello[:]); err != nil {
		return 0, err
	}
	var verdict [5]byte
	if _, err := io.ReadFull(c, verdict[:]); err != nil {
		return 0, err
	}
	_ = c.SetDeadline(time.Time{})
	s.observeEpoch(peer, binary.LittleEndian.Uint32(verdict[1:]))
	return verdict[0], nil
}

// verdict encodes a handshake verdict frame: the verdict byte followed
// by this side's incarnation epoch.
func (s *stream) verdict(v byte) []byte {
	b := make([]byte, 5)
	b[0] = v
	binary.LittleEndian.PutUint32(b[1:], s.cfg.Epoch)
	return b
}

// observeEpoch records the incarnation number a peer announced in a
// connection handshake. A higher epoch than previously recorded, from a
// rank this side has already communicated with, proves the rank's prior
// incarnation is dead — the launcher only increments the epoch when it
// restarts the rank. The evidence is reported as a hard peer-down event
// (same strength as a refused redial) so the liveness detector declares
// the death even while the replacement's own heartbeats keep the rank
// looking noisy. First contact with an already-restarted rank records
// the epoch silently: this side never talked to the prior incarnation,
// so it has nothing to mourn.
func (s *stream) observeEpoch(peer int, epoch uint32) {
	s.epochMu.Lock()
	if epoch <= s.peerEpochs[peer] {
		s.epochMu.Unlock()
		return
	}
	s.peerEpochs[peer] = epoch
	s.epochMu.Unlock()
	s.connsMu.RLock()
	ever := s.everConn[peer]
	s.connsMu.RUnlock()
	if ever {
		connTrace(s.rank, peer, cevEpochDeath, int64(epoch))
		s.notifyPeerDown(peer, true)
	}
}

// awaitConn waits for a connection to peer to be installed (by the
// accept side) until the deadline.
func (s *stream) awaitConn(peer int, deadline time.Time) bool {
	for time.Now().Before(deadline) {
		s.connsMu.RLock()
		ok := s.conns[peer] != nil
		s.connsMu.RUnlock()
		if ok {
			return true
		}
		select {
		case <-s.done:
			return false
		case <-time.After(time.Millisecond):
		}
	}
	return false
}

// installConnLocked publishes a connection for peer (replacing any broken
// predecessor). Caller holds connsMu and starts the read loop after
// releasing it.
func (s *stream) installConnLocked(peer int, c net.Conn) *streamConn {
	conn := &streamConn{peer: peer, c: c}
	old := s.conns[peer]
	s.conns[peer] = conn
	s.everConn[peer] = true
	delete(s.dialing, peer)
	var replaced int64
	if old != nil {
		replaced = 1
		old.c.Close()
	}
	connTrace(s.rank, peer, cevInstall, replaced)
	return conn
}

// dropConn tears down a broken connection, fails its outstanding Gets
// with ErrLinkDown, and — when this side is the canonical dialer (the
// higher rank) — starts a redial campaign. The lower rank's senders kick
// their own campaign from conn() when they next need the link.
//
// A write-site drop does NOT close the socket: only the send direction
// is known dead, and the kernel may still hold inbound frames the peer
// flushed before its end went away. Stream sockets deliver buffered
// data up to EOF — unless the reader closes first, which discards it.
// Those last frames matter: a peer that exits right after upgrading a
// pair to the shared-memory ring announces the switch on the socket,
// and eating that announcement leaves this side blind to a ring that
// holds the peer's final acks. The read loop keeps draining and closes
// the socket itself when it hits EOF (its own dropConn lands in the
// stale branch below).
func (s *stream) dropConn(conn *streamConn, site int64) {
	select {
	case <-s.done:
		return
	default:
	}
	s.connsMu.Lock()
	if s.conns[conn.peer] != conn {
		// Already replaced or dropped by a concurrent failure. The drop
		// hook still fires: a replaced socket's late read error is often
		// the only local evidence that the peer re-dialed (its revival
		// installed the new conn before the old one's EOF surfaced), and
		// the provider above must re-key its establishment either way.
		s.connsMu.Unlock()
		connTrace(s.rank, conn.peer, cevDropStale, site)
		if site == dropSiteWrite {
			s.connsMu.Lock()
			s.draining[conn] = struct{}{}
			s.connsMu.Unlock()
		} else {
			conn.c.Close()
		}
		s.notifyConnDrop(conn.peer)
		return
	}
	s.conns[conn.peer] = nil
	connTrace(s.rank, conn.peer, cevDrop, site)
	s.connDrops.Add(1)
	redial := s.rank > conn.peer && !s.dialing[conn.peer]
	if redial {
		s.dialing[conn.peer] = true
	}
	if site == dropSiteWrite {
		s.draining[conn] = struct{}{}
	}
	s.connsMu.Unlock()
	if site != dropSiteWrite {
		conn.c.Close()
	}
	// An established link breaking (EOF, write error) is soft suspicion:
	// a dead peer's sockets always break, but a broken socket does not
	// prove a dead peer.
	s.notifyConnDrop(conn.peer)
	s.notifyPeerDown(conn.peer, false)
	s.failGets(conn.peer)
	if redial {
		s.redials.Add(1)
		go func() {
			if err := s.dialPeer(conn.peer); err != nil {
				// Give up: the link stays down and sends keep
				// returning ErrLinkDown.
				s.connsMu.Lock()
				delete(s.dialing, conn.peer)
				s.connsMu.Unlock()
				return
			}
			s.redialsOK.Add(1)
		}()
	}
}

// notifyConnDrop dispatches the provider's conn-drop hook off the
// calling goroutine: drops fire from send paths that may hold the SHM
// provider's per-pair locks, and the hook takes those same locks.
func (s *stream) notifyConnDrop(peer int) {
	if s.onConnDrop != nil {
		go s.onConnDrop(peer)
	}
}

// failGets fails every outstanding Get against peer so pullers blocked
// on a dead connection unblock and can retry.
func (s *stream) failGets(peer int) {
	s.getMu.Lock()
	defer s.getMu.Unlock()
	for _, g := range s.gets {
		if g.peer != peer {
			continue
		}
		select {
		case g.done <- fmt.Errorf("%w: connection to rank %d broke mid-pull", ErrLinkDown, peer):
		default:
		}
	}
}

func (s *stream) Rank() int { return s.rank }
func (s *stream) Size() int { return s.size }

// PoolOutstanding returns the number of frame buffers currently checked
// out of this endpoint's pool (zero when quiesced); see
// Inproc.PoolOutstanding.
func (s *stream) PoolOutstanding() int64 { return s.pool.Outstanding() }

// NumConns returns how many peer links are currently established — the
// lazy-dialing observability hook (a rank that only ever talked to k
// peers holds k connections, not Size-1).
func (s *stream) NumConns() int {
	s.connsMu.RLock()
	defer s.connsMu.RUnlock()
	n := 0
	for _, c := range s.conns {
		if c != nil {
			n++
		}
	}
	return n
}

func encodeHeader(b *[headerWireSize]byte, hdr Header) {
	b[0] = byte(hdr.Kind)
	b[1] = hdr.Flags
	binary.LittleEndian.PutUint64(b[2:], hdr.Tag)
	binary.LittleEndian.PutUint64(b[10:], hdr.MsgID)
	binary.LittleEndian.PutUint64(b[18:], uint64(hdr.Offset))
	binary.LittleEndian.PutUint64(b[26:], uint64(hdr.Total))
	binary.LittleEndian.PutUint64(b[34:], uint64(hdr.Aux0))
	binary.LittleEndian.PutUint64(b[42:], uint64(hdr.Aux1))
}

func decodeHeader(b []byte) Header {
	return Header{
		Kind:   Kind(b[0]),
		Flags:  b[1],
		Tag:    binary.LittleEndian.Uint64(b[2:]),
		MsgID:  binary.LittleEndian.Uint64(b[10:]),
		Offset: int64(binary.LittleEndian.Uint64(b[18:])),
		Total:  int64(binary.LittleEndian.Uint64(b[26:])),
		Aux0:   int64(binary.LittleEndian.Uint64(b[34:])),
		Aux1:   int64(binary.LittleEndian.Uint64(b[42:])),
	}
}

// writeFrame sends one length-prefixed frame using a gather write. A
// socket failure tears the connection down (starting redial where this
// side dials) and reports ErrLinkDown.
func (s *stream) writeFrame(conn *streamConn, hdr Header, payload ...[]byte) error {
	total := 0
	for _, p := range payload {
		total += len(p)
	}
	if total > MaxFragSize {
		return fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", total, MaxFragSize)
	}
	var pre [4 + headerWireSize]byte
	binary.LittleEndian.PutUint32(pre[:4], uint32(total))
	var hb [headerWireSize]byte
	encodeHeader(&hb, hdr)
	copy(pre[4:], hb[:])
	bufs := make(net.Buffers, 0, 1+len(payload))
	bufs = append(bufs, pre[:])
	for _, p := range payload {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	spin(s.cfg.PerPacket)
	conn.wmu.Lock()
	_, err := bufs.WriteTo(conn.c)
	conn.wmu.Unlock()
	if err != nil {
		s.dropConn(conn, dropSiteWrite)
		return fmt.Errorf("%w: write to rank %d: %v", ErrLinkDown, conn.peer, err)
	}
	return nil
}

func (s *stream) Send(to int, hdr Header, payload ...[]byte) error {
	conn, err := s.conn(to)
	if err != nil {
		return err
	}
	return s.writeFrame(conn, hdr, payload...)
}

func (s *stream) SendFrom(to int, hdr Header, src Source, off, size int64) (int64, error) {
	conn, err := s.conn(to)
	if err != nil {
		return 0, err
	}
	if size > MaxFragSize {
		return 0, fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", size, MaxFragSize)
	}
	// If the source exposes direct windows, gather them straight into the
	// socket; otherwise pack into a staging buffer first.
	if ds, ok := src.(DirectSource); ok {
		bufs := make([][]byte, 0, 8)
		at, left := off, size
		for left > 0 {
			w, ok := ds.Window(at, left)
			if !ok || len(w) == 0 {
				bufs = nil
				break
			}
			bufs = append(bufs, w)
			at += int64(len(w))
			left -= int64(len(w))
		}
		if bufs != nil {
			return size, s.writeFrame(conn, hdr, bufs...)
		}
	}
	buf := s.pool.get(int(size))
	defer s.pool.put(buf)
	staging := (*buf)[:size]
	got, err := src.ReadAt(staging, off)
	if err != nil && err != io.EOF {
		return 0, err
	}
	if got == 0 && size > 0 {
		return 0, ErrShortTransfer
	}
	return int64(got), s.writeFrame(conn, hdr, staging[:got])
}

// conn returns the live connection to a peer, lazily establishing the
// first one: the initial send toward a peer dials it (blocking up to
// Config.DialTimeout and failing with an error that names the peer and
// its address when it is unreachable). After a link has existed once, a
// broken link fails fast with ErrLinkDown while the redial campaign runs
// — the transport layer's retry/timeout machinery owns that wait.
func (s *stream) conn(to int) (*streamConn, error) {
	if to < 0 || to >= s.size {
		return nil, rangeErr("destination", to, s.size)
	}
	if to == s.rank {
		return nil, errors.New("fabric: self-send not supported over byte-stream providers")
	}
	s.connsMu.RLock()
	c := s.conns[to]
	s.connsMu.RUnlock()
	if c != nil {
		return c, nil
	}
	select {
	case <-s.done:
		return nil, ErrClosed
	default:
	}
	// No link. Decide between lazy first establishment (block) and
	// broken-link fast failure.
	s.connsMu.Lock()
	if c = s.conns[to]; c != nil {
		s.connsMu.Unlock()
		return c, nil
	}
	if s.down[to] {
		// Declared dead: fail fast. The transport already knows (the
		// declaration came from it), so blocking a dial window here
		// would only strand the posting goroutine.
		s.connsMu.Unlock()
		return nil, fmt.Errorf("%w: rank %d declared down", ErrLinkDown, to)
	}
	if s.everConn[to] {
		// Broken link: fail this send fast (the transport layer's
		// retry/timeout machinery owns the wait) but make sure a redial
		// campaign is running. dropConn only redials from the higher
		// rank — the deterministic dialer — yet with retransmitting
		// senders the traffic can live entirely on the lower side: a
		// receiver that already acked has no reason to dial back, and
		// without this campaign every resend would die on ErrLinkDown
		// until the retransmission budget expired.
		if !s.dialing[to] && s.addrs != nil {
			s.dialing[to] = true
			s.redials.Add(1)
			go func() {
				err := s.dialPeer(to)
				s.connsMu.Lock()
				delete(s.dialing, to)
				s.connsMu.Unlock()
				if err == nil {
					s.redialsOK.Add(1)
				}
			}()
		}
		s.connsMu.Unlock()
		return nil, fmt.Errorf("%w: no connection to rank %d", ErrLinkDown, to)
	}
	if s.addrs == nil {
		s.connsMu.Unlock()
		return nil, fmt.Errorf("fabric: rank %d has no address table yet (Join not called)", s.rank)
	}
	if !s.dialing[to] {
		s.dialing[to] = true
		go func() {
			err := s.dialPeer(to)
			s.connsMu.Lock()
			delete(s.dialing, to)
			s.connsMu.Unlock()
			_ = err // the waiting sender reports its own timeout
		}()
	}
	addr := s.addrs[to]
	s.connsMu.Unlock()

	deadline := time.Now().Add(s.cfg.DialTimeout)
	for {
		select {
		case <-s.done:
			return nil, ErrClosed
		case <-time.After(time.Millisecond):
		}
		s.connsMu.RLock()
		c = s.conns[to]
		campaignDone := !s.dialing[to]
		s.connsMu.RUnlock()
		if c != nil {
			return c, nil
		}
		if campaignDone || time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: rank %d: peer rank %d unreachable at %q (dial timeout %v)",
				ErrLinkDown, s.rank, to, addr, s.cfg.DialTimeout)
		}
	}
}

func (s *stream) Recv() (*Packet, bool) {
	select {
	case pkt := <-s.inbox:
		return pkt, true
	case <-s.done:
		select {
		case pkt := <-s.inbox:
			return pkt, true
		default:
			return nil, false
		}
	}
}

// deliver pushes a packet into the inbox (used by the read loops and by
// providers layered on the stream core, e.g. the SHM ring poller).
// It reports false when the provider shut down before delivery.
func (s *stream) deliver(pkt *Packet) bool {
	select {
	case s.inbox <- pkt:
		return true
	case <-s.done:
		return false
	}
}

func (s *stream) Register(src Source) uint64 {
	key := s.nextKey.Add(1)
	s.regMu.Lock()
	s.regs[key] = src
	s.regMu.Unlock()
	return key
}

func (s *stream) Deregister(key uint64) {
	s.regMu.Lock()
	delete(s.regs, key)
	s.regMu.Unlock()
}

// lookupReg resolves a registered source (provider extensions use it to
// serve window pulls).
func (s *stream) lookupReg(key uint64) (Source, bool) {
	s.regMu.RLock()
	src, ok := s.regs[key]
	s.regMu.RUnlock()
	return src, ok
}

func (s *stream) Get(from int, key uint64, off int64, sink Sink, sinkOff, size int64) error {
	return s.getVia(from, key, off, sink, sinkOff, size, 0, 0)
}

// getVia runs the Get request/response protocol; flags and aux0 are
// carried in the request header for provider extensions (the SHM
// provider sets its window flag and size). The registered streamGet
// entry also receives windowed responses routed by the provider's ctrl
// hook.
func (s *stream) getVia(from int, key uint64, off int64, sink Sink, sinkOff, size int64, flags uint8, aux0 int64) error {
	if size == 0 {
		return nil
	}
	conn, err := s.conn(from)
	if err != nil {
		return err
	}
	id := s.nextGet.Add(1)
	g := &streamGet{peer: from, sink: sink, sinkOff: sinkOff - off, left: size, done: make(chan error, 1)}
	s.getMu.Lock()
	s.gets[id] = g
	s.getMu.Unlock()
	defer func() {
		s.getMu.Lock()
		delete(s.gets, id)
		s.getMu.Unlock()
	}()
	req := Header{Kind: kindGetReq, Flags: flags, MsgID: id, Offset: off, Total: size, Aux0: aux0, Aux1: int64(key)}
	if err := s.writeFrame(conn, req); err != nil {
		return err
	}
	select {
	case err := <-g.done:
		return err
	case <-s.done:
		return ErrClosed
	}
}

// lookupGet resolves an outstanding Get by id (for ctrl-hook routing).
func (s *stream) lookupGet(id uint64) *streamGet {
	s.getMu.Lock()
	g := s.gets[id]
	s.getMu.Unlock()
	return g
}

// serveGet streams a registered source back to the requester in fragments.
// With Config.Checksum set, every response frame carries a CRC32C of its
// payload in Aux0 for verification before delivery.
func (s *stream) serveGet(conn *streamConn, hdr Header) {
	key := uint64(hdr.Aux1)
	src, ok := s.lookupReg(key)
	fail := func(msg string) {
		_ = s.writeFrame(conn, Header{Kind: kindGetErr, MsgID: hdr.MsgID}, []byte(msg))
	}
	if !ok {
		fail(ErrBadKey.Error())
		return
	}
	off, left := hdr.Offset, hdr.Total
	pb := s.pool.get(s.cfg.FragSize)
	defer s.pool.put(pb)
	buf := (*pb)[:s.cfg.FragSize]
	for left > 0 {
		step := int64(len(buf))
		if step > left {
			step = left
		}
		n, err := src.ReadAt(buf[:step], off)
		if err != nil && err != io.EOF {
			fail(err.Error())
			return
		}
		if n == 0 {
			fail(ErrShortTransfer.Error())
			return
		}
		resp := Header{Kind: kindGetResp, MsgID: hdr.MsgID, Offset: off, Total: hdr.Total}
		if s.cfg.Checksum {
			resp.Aux0 = int64(CRC32(buf[:n]))
		}
		if err := s.writeFrame(conn, resp, buf[:n]); err != nil {
			return
		}
		off += int64(n)
		left -= int64(n)
	}
}

// failGet delivers a Get failure to its waiting initiator (shared by the
// read loop and provider extensions).
func (g *streamGet) fail(err error) {
	select {
	case g.done <- err:
	default:
	}
}

func (s *stream) readLoop(conn *streamConn) {
	// The read loop is the last user of a write-dropped ("draining")
	// connection's socket; close it on the way out no matter which path
	// dropped it (net.Conn.Close is idempotent).
	defer func() {
		s.connsMu.Lock()
		delete(s.draining, conn)
		s.connsMu.Unlock()
		conn.c.Close()
	}()
	br := conn.c
	var pre [4 + headerWireSize]byte
	for {
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			s.dropConn(conn, dropSiteHeader)
			return
		}
		plen := int(binary.LittleEndian.Uint32(pre[:4]))
		hdr := decodeHeader(pre[4:])
		var payload []byte
		var pbuf *[]byte
		if plen > 0 {
			pbuf = s.pool.get(plen)
			payload = (*pbuf)[:plen]
			if _, err := io.ReadFull(br, payload); err != nil {
				s.pool.put(pbuf)
				s.dropConn(conn, dropSitePayload)
				return
			}
		}
		// Frames consumed inline return their buffer here; inbox packets
		// carry it until the transport calls Release.
		putback := func() {
			if pbuf != nil {
				s.pool.put(pbuf)
			}
		}
		if hdr.Kind >= kindProviderCtrlMin && s.ctrl != nil {
			s.ctrl(conn, hdr, payload, putback)
			continue
		}
		switch hdr.Kind {
		case kindGetReq:
			putback()
			if s.onGetReq != nil && s.onGetReq(conn, hdr) {
				continue
			}
			go s.serveGet(conn, hdr)
		case kindGetResp:
			g := s.lookupGet(hdr.MsgID)
			if g == nil {
				putback()
				continue
			}
			if s.cfg.Checksum && CRC32(payload) != uint32(uint64(hdr.Aux0)) {
				s.checksumErrs.Add(1)
				putback()
				g.fail(fmt.Errorf("%w: rendezvous pull frame at offset %d", ErrCorrupt, hdr.Offset))
				continue
			}
			_, err := g.sink.WriteAt(payload, g.sinkOff+hdr.Offset)
			putback()
			if err != nil {
				g.done <- err
				continue
			}
			if atomic.AddInt64(&g.left, -int64(plen)) <= 0 {
				g.done <- nil
			}
		case kindGetErr:
			if g := s.lookupGet(hdr.MsgID); g != nil {
				g.done <- errors.New("fabric: remote get: " + string(payload))
			}
			putback()
		default:
			pkt := &Packet{From: conn.peer, Hdr: hdr, Payload: payload, release: putback}
			if !s.deliver(pkt) {
				putback()
				return
			}
		}
	}
}

// Close shuts the provider down and closes all sockets.
func (s *stream) Close() error {
	s.once.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connsMu.Lock()
		conns := append([]*streamConn(nil), s.conns...)
		for c := range s.draining {
			conns = append(conns, c)
		}
		s.connsMu.Unlock()
		for _, c := range conns {
			if c != nil {
				c.c.Close()
			}
		}
	})
	return nil
}
