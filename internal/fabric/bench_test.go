package fabric

import (
	"fmt"
	"testing"
)

// Benchmarks documenting the copy economics of the fabric: eager sends
// pay staging copies, Get pulls move bytes directly between direct
// endpoints, and generic endpoints add callback passes.

func BenchmarkInprocSendRecv(b *testing.B) {
	for _, size := range []int{64, 4096, 16384} {
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			f := NewInproc(2, Config{})
			defer f.Close()
			payload := make([]byte, size)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < b.N; i++ {
					pkt, ok := f.NIC(1).Recv()
					if !ok {
						return
					}
					pkt.Release()
				}
			}()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.NIC(0).Send(1, Header{}, payload); err != nil {
					b.Fatal(err)
				}
			}
			<-done
		})
	}
}

func benchGet(b *testing.B, src Source, sink Sink, n int64) {
	f := NewInproc(2, Config{})
	defer f.Close()
	key := f.NIC(0).Register(src)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.NIC(1).Get(0, key, 0, sink, 0, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetDirectToDirect(b *testing.B) {
	const n = 1 << 20
	benchGet(b, Bytes(make([]byte, n)), Bytes(make([]byte, n)), n)
}

func BenchmarkGetIovToDirect(b *testing.B) {
	const n = 1 << 20
	regions := make([][]byte, 256)
	for i := range regions {
		regions[i] = make([]byte, n/256)
	}
	benchGet(b, NewIov(regions), Bytes(make([]byte, n)), n)
}

func BenchmarkGetManyTinyRegions(b *testing.B) {
	// The NAS_MG_x shape: thousands of 8-byte regions.
	const n = 1 << 17
	regions := make([][]byte, n/8)
	for i := range regions {
		regions[i] = make([]byte, 8)
	}
	benchGet(b, NewIov(regions), Bytes(make([]byte, n)), n)
}

func BenchmarkGetGenericBounce(b *testing.B) {
	const n = 1 << 20
	src := nonDirectSource{Bytes(make([]byte, n))}
	sink := nonDirectSink{Bytes(make([]byte, n))}
	benchGet(b, src, sink, n)
}

func BenchmarkTransferLoopback(b *testing.B) {
	const n = 1 << 20
	src := Bytes(make([]byte, n))
	dst := Bytes(make([]byte, n))
	bounce := make([]byte, DefaultFragSize)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Transfer(src, 0, dst, 0, n, bounce); err != nil {
			b.Fatal(err)
		}
	}
}
