package fabric

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// faultPair brings up a 2-rank inproc fabric with rank 0 wrapped in a
// fault plan; returns the wrapped sender and the raw receiver NIC.
func faultPair(t *testing.T, plan FaultPlan) (*FaultNIC, NIC, func()) {
	t.Helper()
	f := NewInproc(2, Config{})
	fn := WrapFault(f.NIC(0), plan)
	cleanup := func() {
		fn.Close()
		f.Close()
	}
	return fn, f.NIC(1), cleanup
}

// recvN drains exactly n packets, returning their payload copies in
// arrival order.
func recvN(t *testing.T, nic NIC, n int, timeout time.Duration) [][]byte {
	t.Helper()
	got := make([][]byte, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < n {
			pkt, ok := nic.Recv()
			if !ok {
				return
			}
			got = append(got, append([]byte(nil), pkt.Payload...))
			pkt.Release()
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("received %d of %d packets before timeout", len(got), n)
	}
	return got
}

func TestFaultDrop(t *testing.T) {
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Peer: -1, Action: Drop, Prob: 1, Count: 1},
	}})
	defer cleanup()
	if err := fn.Send(1, Header{}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := fn.Send(1, Header{}, []byte{2}); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, rx, 1, time.Second)
	if got[0][0] != 2 {
		t.Fatalf("first delivered byte = %d, want 2 (first packet dropped)", got[0][0])
	}
	if fn.Stats().Dropped.Load() != 1 || fn.RuleFired(0) != 1 {
		t.Fatal("drop counter did not fire exactly once")
	}
}

func TestFaultDuplicate(t *testing.T) {
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Peer: -1, Action: Duplicate, Prob: 1, Count: 1},
	}})
	defer cleanup()
	if err := fn.Send(1, Header{}, []byte{7}); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, rx, 2, time.Second)
	if got[0][0] != 7 || got[1][0] != 7 {
		t.Fatal("duplicate did not deliver the packet twice")
	}
	if fn.Stats().Duplicated.Load() != 1 {
		t.Fatal("duplicate counter did not fire")
	}
}

func TestFaultReorderSwapsAdjacent(t *testing.T) {
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Peer: -1, Action: Reorder, Prob: 1, Count: 1},
	}})
	defer cleanup()
	if err := fn.Send(1, Header{}, []byte{1}); err != nil { // held
		t.Fatal(err)
	}
	if err := fn.Send(1, Header{}, []byte{2}); err != nil { // flushes: 2 then 1
		t.Fatal(err)
	}
	got := recvN(t, rx, 2, time.Second)
	if got[0][0] != 2 || got[1][0] != 1 {
		t.Fatalf("order = %d,%d; want 2,1", got[0][0], got[1][0])
	}
}

func TestFaultReorderFlushOnClose(t *testing.T) {
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Peer: -1, Action: Reorder, Prob: 1, Count: 1},
	}})
	defer cleanup()
	if err := fn.Send(1, Header{}, []byte{9}); err != nil {
		t.Fatal(err)
	}
	fn.Close()
	got := recvN(t, rx, 1, time.Second)
	if got[0][0] != 9 {
		t.Fatal("held packet not flushed on Close")
	}
}

func TestFaultCorruptAndTruncate(t *testing.T) {
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 3, Rules: []FaultRule{
		{Peer: -1, Action: Corrupt, Prob: 1, Count: 1},
		{Peer: -1, Action: Truncate, Prob: 1, Count: 1, Bytes: 3},
	}})
	defer cleanup()
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := fn.Send(1, Header{}, append([]byte(nil), orig...)); err != nil {
		t.Fatal(err)
	}
	if err := fn.Send(1, Header{}, append([]byte(nil), orig...)); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, rx, 2, time.Second)
	if bytes.Equal(got[0], orig) {
		t.Fatal("corrupt rule left payload intact")
	}
	if len(got[0]) != len(orig) {
		t.Fatal("corrupt rule changed payload length")
	}
	if len(got[1]) != len(orig)-3 || !bytes.Equal(got[1], orig[:5]) {
		t.Fatalf("truncate produced %v", got[1])
	}
	if fn.Stats().Corrupted.Load() != 1 || fn.Stats().Truncated.Load() != 1 {
		t.Fatal("corrupt/truncate counters wrong")
	}
}

func TestFaultKindFilter(t *testing.T) {
	const ctrl Kind = 5
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Peer: -1, Kinds: []Kind{ctrl}, Action: Drop, Prob: 1},
	}})
	defer cleanup()
	if err := fn.Send(1, Header{Kind: ctrl}, []byte{1}); err != nil { // dropped
		t.Fatal(err)
	}
	if err := fn.Send(1, Header{Kind: 6}, []byte{2}); err != nil { // passes
		t.Fatal(err)
	}
	got := recvN(t, rx, 1, time.Second)
	if got[0][0] != 2 {
		t.Fatal("kind filter dropped the wrong packet")
	}
}

func TestFaultLinkDown(t *testing.T) {
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Peer: 1, Action: LinkDown, Prob: 1, Count: 1, Down: 2},
	}})
	defer cleanup()
	// Firing send + 2 more are dropped; the 4th passes.
	for i := byte(1); i <= 4; i++ {
		if err := fn.Send(1, Header{}, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	got := recvN(t, rx, 1, time.Second)
	if got[0][0] != 4 {
		t.Fatalf("delivered byte %d, want 4", got[0][0])
	}
	if fn.Stats().DownDrops.Load() != 3 {
		t.Fatalf("DownDrops = %d, want 3", fn.Stats().DownDrops.Load())
	}
}

func TestFaultFailGetAndDownGet(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	fn := WrapFault(f.NIC(1), FaultPlan{Seed: 2, Rules: []FaultRule{
		{Peer: 0, Action: FailGet, Prob: 1, Count: 2},
	}})
	defer fn.Close()
	data := []byte("hello fault world")
	key := f.NIC(0).Register(Bytes(data))
	out := make([]byte, len(data))
	for i := 0; i < 2; i++ {
		if err := fn.Get(0, key, 0, Bytes(out), 0, int64(len(data))); !errors.Is(err, ErrLinkDown) {
			t.Fatalf("attempt %d: err = %v, want ErrLinkDown", i, err)
		}
	}
	if err := fn.Get(0, key, 0, Bytes(out), 0, int64(len(data))); err != nil {
		t.Fatalf("get after rule exhausted: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("get payload mismatch")
	}
	if fn.Stats().GetsFailed.Load() != 2 {
		t.Fatal("GetsFailed counter wrong")
	}
}

func TestFaultSendFromStagesAndInjects(t *testing.T) {
	fn, rx, cleanup := faultPair(t, FaultPlan{Seed: 5, Rules: []FaultRule{
		{Peer: -1, Action: Corrupt, Prob: 1, Count: 1},
	}})
	defer cleanup()
	src := Bytes([]byte{10, 20, 30, 40})
	n, err := fn.SendFrom(1, Header{}, src, 0, 4)
	if err != nil || n != 4 {
		t.Fatalf("SendFrom = (%d, %v)", n, err)
	}
	got := recvN(t, rx, 1, time.Second)
	if bytes.Equal(got[0], []byte(src)) {
		t.Fatal("SendFrom payload was not corrupted")
	}
}

// TestFaultDeterminism pins that identical plans over identical
// operation sequences make identical decisions: the delivered packet
// stream (content and order) is byte-identical across runs.
func TestFaultDeterminism(t *testing.T) {
	run := func() []byte {
		plan := FaultPlan{Seed: 99, Rules: []FaultRule{
			{Peer: -1, Action: Drop, Prob: 0.3},
			{Peer: -1, Action: Duplicate, Prob: 0.3},
		}}
		fn, rx, cleanup := faultPair(t, plan)
		defer cleanup()
		const sends = 50
		for i := byte(0); i < sends; i++ {
			if err := fn.Send(1, Header{}, []byte{i}); err != nil {
				t.Fatal(err)
			}
		}
		// Send-side decisions are deterministic, so the delivered count
		// is exactly sends - drops + duplicates.
		expect := sends - int(fn.Stats().Dropped.Load()) + int(fn.Stats().Duplicated.Load())
		if expect == 0 || expect == sends {
			t.Fatalf("plan fired implausibly: %d of %d delivered", expect, sends)
		}
		var order []byte
		for _, p := range recvN(t, rx, expect, 2*time.Second) {
			order = append(order, p...)
		}
		return order
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
}
