//go:build !linux && !darwin

package fabric

import "errors"

var errNoMmap = errors.New("fabric: SHM provider requires mmap (linux or darwin)")

func mapFile(path string, size int, create bool) ([]byte, error) { return nil, errNoMmap }

func unmapFile(mem []byte) error { return nil }
