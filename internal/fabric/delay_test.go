package fabric

import (
	"testing"
	"time"
)

// The synthetic delay knobs model per-packet and per-window costs of a
// real interconnect; these tests pin down that they actually charge time.

func TestPerPacketDelayCharged(t *testing.T) {
	const delay = 200 * time.Microsecond
	const packets = 20
	f := NewInproc(2, Config{PerPacket: delay})
	defer f.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < packets; i++ {
			pkt, ok := f.NIC(1).Recv()
			if !ok {
				return
			}
			pkt.Release()
		}
	}()
	start := time.Now()
	for i := 0; i < packets; i++ {
		if err := f.NIC(0).Send(1, Header{}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if elapsed := time.Since(start); elapsed < packets*delay {
		t.Fatalf("sent %d packets in %v; per-packet delay of %v not charged", packets, elapsed, delay)
	}
}

func TestPerGetDelayCharged(t *testing.T) {
	const delay = 100 * time.Microsecond
	f := NewInproc(2, Config{PerGet: delay, FragSize: 1024})
	defer f.Close()
	data := make([]byte, 16*1024) // 16 windows
	key := f.NIC(0).Register(Bytes(data))
	out := make([]byte, len(data))
	start := time.Now()
	if err := f.NIC(1).Get(0, key, 0, Bytes(out), 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 16*delay {
		t.Fatalf("pull took %v; per-window delay of %v not charged", elapsed, delay)
	}
}

func TestSpinPrecision(t *testing.T) {
	start := time.Now()
	spin(300 * time.Microsecond)
	if got := time.Since(start); got < 300*time.Microsecond {
		t.Fatalf("spin returned after %v", got)
	}
	spin(0)  // no-op
	spin(-1) // no-op
}
