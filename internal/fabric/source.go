package fabric

import (
	"fmt"
	"io"
	"sort"
)

// Source supplies message bytes by virtual offset. It is the send-side
// abstraction every datatype lowers to: contiguous buffers, iovec region
// lists and callback-packed (generic) types all implement it.
//
// ReadAt follows io.ReaderAt semantics restricted to the [0, Size) window:
// it fills dst with bytes starting at off and returns how many were
// produced. Implementations may return fewer bytes than requested only at
// the end of the source.
type Source interface {
	// Size returns the total number of bytes the source will produce.
	Size() int64
	// ReadAt packs up to len(dst) bytes starting at virtual offset off.
	ReadAt(dst []byte, off int64) (int, error)
}

// DirectSource is a Source whose bytes already live in memory, so the
// fabric can transfer them with zero intermediate copies.
type DirectSource interface {
	Source
	// Window returns a view of the underlying memory starting at off,
	// capped at n bytes. The view may be shorter than n when off is near a
	// region boundary; callers iterate. ok is false if the offset cannot
	// be exposed directly (then the fabric falls back to ReadAt).
	Window(off, n int64) (view []byte, ok bool)
}

// Sink consumes message bytes by virtual offset: the receive-side dual of
// Source.
type Sink interface {
	// Size returns the total number of bytes the sink accepts.
	Size() int64
	// WriteAt consumes src at virtual offset off, returning the number of
	// bytes accepted. Implementations must accept all of src unless the
	// write extends past Size.
	WriteAt(src []byte, off int64) (int, error)
}

// DirectSink is a Sink backed by memory the fabric may fill in place.
type DirectSink interface {
	Sink
	// Window is the writable dual of DirectSource.Window.
	Window(off, n int64) (view []byte, ok bool)
}

// SequentialSink is implemented by sinks that must observe bytes in
// strictly increasing offset order (the custom-datatype inorder contract).
// Transports buffer out-of-order fragments before delivering to such sinks.
type SequentialSink interface {
	Sink
	// Sequential reports whether in-order delivery is required.
	Sequential() bool
}

// Bytes is a contiguous in-memory Source and Sink over a byte slice.
type Bytes []byte

// Size implements Source and Sink.
func (b Bytes) Size() int64 { return int64(len(b)) }

// ReadAt implements Source.
func (b Bytes) ReadAt(dst []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, fmt.Errorf("fabric: Bytes.ReadAt offset %d out of range [0,%d]", off, len(b))
	}
	n := copy(dst, b[off:])
	if n < len(dst) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements Sink.
func (b Bytes) WriteAt(src []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, fmt.Errorf("fabric: Bytes.WriteAt offset %d out of range [0,%d]", off, len(b))
	}
	n := copy(b[off:], src)
	if n < len(src) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// Window implements DirectSource and DirectSink.
func (b Bytes) Window(off, n int64) ([]byte, bool) {
	if off < 0 || off > int64(len(b)) {
		return nil, false
	}
	end := off + n
	if end > int64(len(b)) {
		end = int64(len(b))
	}
	return b[off:end], true
}

// Iov is a scatter/gather list of memory regions presented as one virtual
// byte stream: region 0's bytes first, then region 1's, and so on. It is
// both a Source and a Sink; the direction is decided by use. Iov is how
// custom-datatype memory regions reach the wire without packing.
//
// The region table and cumulative-offset index are immutable after
// construction, so ReadAt/WriteAt/Window are safe to call concurrently
// at disjoint offsets — the property striped rendezvous pulls rely on.
type Iov struct {
	regions [][]byte
	// cum[i] is the virtual offset of regions[i]; cum[len(regions)] is the
	// total size.
	cum []int64
}

// NewIov builds an Iov over the given regions. The region slices are
// retained, not copied.
func NewIov(regions [][]byte) *Iov {
	cum := make([]int64, len(regions)+1)
	for i, r := range regions {
		cum[i+1] = cum[i] + int64(len(r))
	}
	return &Iov{regions: regions, cum: cum}
}

// Regions returns the underlying region list.
func (v *Iov) Regions() [][]byte { return v.regions }

// NumRegions reports how many distinct memory regions back the stream.
func (v *Iov) NumRegions() int { return len(v.regions) }

// Size implements Source and Sink.
func (v *Iov) Size() int64 { return v.cum[len(v.regions)] }

// locate returns the region index containing virtual offset off.
func (v *Iov) locate(off int64) int {
	// sort.Search finds the first region whose end exceeds off.
	return sort.Search(len(v.regions), func(i int) bool { return v.cum[i+1] > off })
}

// ReadAt implements Source, gathering across region boundaries.
func (v *Iov) ReadAt(dst []byte, off int64) (int, error) {
	if off < 0 || off > v.Size() {
		return 0, fmt.Errorf("fabric: Iov.ReadAt offset %d out of range [0,%d]", off, v.Size())
	}
	total := 0
	for len(dst) > 0 && off < v.Size() {
		i := v.locate(off)
		r := v.regions[i][off-v.cum[i]:]
		n := copy(dst, r)
		dst = dst[n:]
		off += int64(n)
		total += n
	}
	if len(dst) > 0 {
		return total, io.EOF
	}
	return total, nil
}

// WriteAt implements Sink, scattering across region boundaries.
func (v *Iov) WriteAt(src []byte, off int64) (int, error) {
	if off < 0 || off > v.Size() {
		return 0, fmt.Errorf("fabric: Iov.WriteAt offset %d out of range [0,%d]", off, v.Size())
	}
	total := 0
	for len(src) > 0 && off < v.Size() {
		i := v.locate(off)
		r := v.regions[i][off-v.cum[i]:]
		n := copy(r, src)
		src = src[n:]
		off += int64(n)
		total += n
	}
	if len(src) > 0 {
		return total, io.ErrShortWrite
	}
	return total, nil
}

// Window implements DirectSource and DirectSink: it exposes the maximal
// contiguous view inside one region.
func (v *Iov) Window(off, n int64) ([]byte, bool) {
	if off < 0 || off > v.Size() {
		return nil, false
	}
	if off == v.Size() {
		return nil, true
	}
	i := v.locate(off)
	r := v.regions[i][off-v.cum[i]:]
	if int64(len(r)) > n {
		r = r[:n]
	}
	return r, true
}

// concatPart is one segment of a Concat stream.
type concatPart struct {
	start int64
	src   Source
	sink  Sink
}

// Concat composes several Sources (or Sinks) into one virtual byte stream.
// The point-to-point engine uses it to lay out a custom-datatype message as
// the packed part followed by the raw memory regions.
//
// Like Iov, the part table is immutable after construction and the
// offset→part lookup is a binary search over it, so concurrent access at
// disjoint offsets is lock-free as long as the parts themselves allow it
// (sequential composites are exempt: the transport never stripes them).
type Concat struct {
	parts      []concatPart
	total      int64
	sequential bool
}

// NewConcatSource composes sources end to end.
func NewConcatSource(srcs ...Source) *Concat {
	c := &Concat{}
	for _, s := range srcs {
		c.parts = append(c.parts, concatPart{start: c.total, src: s})
		c.total += s.Size()
	}
	return c
}

// NewConcatSink composes sinks end to end. If sequential is true the
// composite requires in-order delivery (needed when a later part's layout
// is only known after an earlier part was consumed).
func NewConcatSink(sequential bool, sinks ...Sink) *Concat {
	c := &Concat{sequential: sequential}
	for _, s := range sinks {
		c.parts = append(c.parts, concatPart{start: c.total, sink: s})
		c.total += s.Size()
	}
	return c
}

// Size implements Source and Sink.
func (c *Concat) Size() int64 { return c.total }

// RegionCounter is implemented by sources/sinks made of distinct memory
// regions; transports use it to pick region-aware protocols.
type RegionCounter interface {
	NumRegions() int
}

// NumRegions sums the region counts of the parts (1 for parts that do not
// report a count).
func (c *Concat) NumRegions() int {
	n := 0
	for _, p := range c.parts {
		var v any = p.src
		if v == nil {
			v = p.sink
		}
		if rc, ok := v.(RegionCounter); ok {
			n += rc.NumRegions()
		} else {
			n++
		}
	}
	return n
}

// Sequential implements SequentialSink.
func (c *Concat) Sequential() bool {
	if c.sequential {
		return true
	}
	for _, p := range c.parts {
		if ss, ok := p.sink.(SequentialSink); ok && ss.Sequential() {
			return true
		}
	}
	return false
}

// find returns the part containing virtual offset off.
func (c *Concat) find(off int64) int {
	return sort.Search(len(c.parts), func(i int) bool {
		end := c.total
		if i+1 < len(c.parts) {
			end = c.parts[i+1].start
		}
		return end > off
	})
}

// ReadAt implements Source across part boundaries.
func (c *Concat) ReadAt(dst []byte, off int64) (int, error) {
	if off < 0 || off > c.total {
		return 0, fmt.Errorf("fabric: Concat.ReadAt offset %d out of range [0,%d]", off, c.total)
	}
	total := 0
	for len(dst) > 0 && off < c.total {
		i := c.find(off)
		p := c.parts[i]
		rel := off - p.start
		want := int64(len(dst))
		if rem := p.src.Size() - rel; rem < want {
			want = rem
		}
		n, err := p.src.ReadAt(dst[:want], rel)
		total += n
		dst = dst[n:]
		off += int64(n)
		if err != nil && err != io.EOF {
			return total, err
		}
		if n == 0 {
			break
		}
	}
	if len(dst) > 0 {
		return total, io.EOF
	}
	return total, nil
}

// WriteAt implements Sink across part boundaries.
func (c *Concat) WriteAt(src []byte, off int64) (int, error) {
	if off < 0 || off > c.total {
		return 0, fmt.Errorf("fabric: Concat.WriteAt offset %d out of range [0,%d]", off, c.total)
	}
	total := 0
	for len(src) > 0 && off < c.total {
		i := c.find(off)
		p := c.parts[i]
		rel := off - p.start
		want := int64(len(src))
		if rem := p.sink.Size() - rel; rem < want {
			want = rem
		}
		n, err := p.sink.WriteAt(src[:want], rel)
		total += n
		src = src[n:]
		off += int64(n)
		if err != nil {
			return total, err
		}
		if n == 0 {
			break
		}
	}
	if len(src) > 0 {
		return total, io.ErrShortWrite
	}
	return total, nil
}

// Window implements DirectSource/DirectSink where the covering part is
// itself direct; otherwise it reports ok=false so the fabric bounces that
// range through ReadAt/WriteAt.
func (c *Concat) Window(off, n int64) ([]byte, bool) {
	if off < 0 || off > c.total {
		return nil, false
	}
	if off == c.total {
		return nil, true
	}
	i := c.find(off)
	p := c.parts[i]
	rel := off - p.start
	var (
		size int64
		win  []byte
		ok   bool
	)
	if p.src != nil {
		size = p.src.Size()
		ds, isDirect := p.src.(DirectSource)
		if !isDirect {
			return nil, false
		}
		if n > size-rel {
			n = size - rel
		}
		win, ok = ds.Window(rel, n)
	} else {
		size = p.sink.Size()
		ds, isDirect := p.sink.(DirectSink)
		if !isDirect {
			return nil, false
		}
		if n > size-rel {
			n = size - rel
		}
		win, ok = ds.Window(rel, n)
	}
	return win, ok
}
