package fabric

import (
	"math/rand"
	"time"
)

// Backoff computes exponentially growing retry delays with bounded
// jitter. It is shared by every retry loop in the stack: TCP dial and
// redial, control-message retransmission in the transport layer, and
// rendezvous Get retries. The zero value is usable and picks the
// defaults below.
type Backoff struct {
	// Base is the delay before the first retry (default 10ms).
	Base time.Duration
	// Max caps the grown delay before jitter (default 1s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the delay randomized, in [0, 1]
	// (default 0.25): the returned delay is uniform in
	// [d*(1-Jitter), d*(1+Jitter)], clamped to Max.
	Jitter float64
}

// DefaultBackoff are the shared retry defaults.
var DefaultBackoff = Backoff{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.25}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = DefaultBackoff.Base
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoff.Max
	}
	if b.Max < b.Base {
		b.Max = b.Base
	}
	if b.Factor < 1 {
		b.Factor = DefaultBackoff.Factor
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = DefaultBackoff.Jitter
	}
	return b
}

// Delay returns the delay before retry number attempt (0-based). rng
// supplies the jitter source so callers control determinism; a nil rng
// disables jitter.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	// Clamp the exponent: past 63 doublings even a 1ns base exceeds any
	// representable Max, and withDefaults admits Factor == 1, where the
	// growth loop never hits Max and would otherwise iterate `attempt`
	// times — an effective hang when a long-lived retry loop passes a
	// huge attempt count.
	if attempt > 63 {
		attempt = 63
	}
	d := float64(b.Base)
	for i := 0; i < attempt && d < float64(b.Max); i++ {
		d *= b.Factor
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng != nil && b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
