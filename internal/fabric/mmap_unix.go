//go:build linux || darwin

package fabric

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of the file at path into memory, shared with
// every other process mapping the same file. With create set the file is
// created (or reused) and grown to size first; otherwise it must already
// exist at (at least) size bytes — the attach side of a segment another
// rank exported.
func mapFile(path string, size int, create bool) ([]byte, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(path, flags, 0o600)
	if err != nil {
		return nil, fmt.Errorf("fabric: shm segment %s: %w", path, err)
	}
	defer f.Close()
	if create {
		if err := f.Truncate(int64(size)); err != nil {
			return nil, fmt.Errorf("fabric: shm segment %s: grow to %d: %w", path, size, err)
		}
	} else if st, err := f.Stat(); err != nil {
		return nil, fmt.Errorf("fabric: shm segment %s: %w", path, err)
	} else if st.Size() < int64(size) {
		return nil, fmt.Errorf("fabric: shm segment %s holds %d bytes, need %d", path, st.Size(), size)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("fabric: shm segment %s: mmap %d bytes: %w", path, size, err)
	}
	return mem, nil
}

// unmapFile releases a mapping returned by mapFile. The backing file is
// untouched (the session directory owner removes it).
func unmapFile(mem []byte) error {
	if mem == nil {
		return nil
	}
	return syscall.Munmap(mem)
}
