package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Reserved header kinds used internally by byte-stream providers for the
// Get (RDMA-read emulation) protocol. Transports must keep their own kinds
// below kindReserved.
const (
	kindReserved Kind = 0xF0
	kindGetReq   Kind = 0xF1
	kindGetResp  Kind = 0xF2
	kindGetErr   Kind = 0xF3
)

// TCP is a fabric provider connecting separate processes over real
// sockets. Gather sends use net.Buffers (writev) so region lists reach the
// kernel without an intermediate application copy, mirroring how UCX hands
// an iovec to the verbs layer.
type TCP struct {
	cfg   Config
	rank  int
	addrs []string
	pool  *bufPool // frame payload and staging buffers

	ln    net.Listener
	conns []*tcpConn
	inbox chan *Packet
	done  chan struct{}
	once  sync.Once

	regMu   sync.RWMutex
	regs    map[uint64]Source
	nextKey atomic.Uint64

	getMu   sync.Mutex
	gets    map[uint64]*tcpGet
	nextGet atomic.Uint64
}

type tcpConn struct {
	peer int
	c    net.Conn
	wmu  sync.Mutex
}

type tcpGet struct {
	sink    Sink
	sinkOff int64 // sink offset corresponding to remote offset 0 of this get
	left    int64
	done    chan error
}

// DialTimeout bounds full-mesh connection establishment.
const DialTimeout = 30 * time.Second

// NewTCP attaches rank to a TCP fabric whose rank i listens at addrs[i].
// Establishment is deterministic: rank i accepts connections from every
// higher rank and dials every lower rank. The call blocks until the full
// mesh is up.
func NewTCP(rank int, addrs []string, cfg Config) (*TCP, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, rangeErr("local", rank, len(addrs))
	}
	cfg = NewConfig(cfg)
	t := &TCP{
		cfg:   cfg,
		rank:  rank,
		addrs: addrs,
		pool:  newBufPool(cfg.FragSize),
		conns: make([]*tcpConn, len(addrs)),
		inbox: make(chan *Packet, cfg.InboxDepth),
		done:  make(chan struct{}),
		regs:  make(map[uint64]Source),
		gets:  make(map[uint64]*tcpGet),
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("fabric: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	t.ln = ln

	errc := make(chan error, len(addrs))
	var wg sync.WaitGroup
	// Accept from higher ranks.
	higher := len(addrs) - rank - 1
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < higher; i++ {
			c, err := ln.Accept()
			if err != nil {
				errc <- err
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(c, hello[:]); err != nil {
				errc <- err
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= rank || peer >= len(addrs) {
				errc <- fmt.Errorf("fabric: unexpected hello from rank %d", peer)
				return
			}
			t.conns[peer] = &tcpConn{peer: peer, c: c}
		}
	}()
	// Dial lower ranks.
	for peer := 0; peer < rank; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			deadline := time.Now().Add(DialTimeout)
			var c net.Conn
			var err error
			for {
				c, err = net.DialTimeout("tcp", addrs[peer], time.Second)
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("fabric: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err)
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(rank))
			if _, err := c.Write(hello[:]); err != nil {
				errc <- err
				return
			}
			t.conns[peer] = &tcpConn{peer: peer, c: c}
		}(peer)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Close()
		return nil, err
	default:
	}
	for peer, conn := range t.conns {
		if peer == rank || conn == nil {
			continue
		}
		go t.readLoop(conn)
	}
	return t, nil
}

func (t *TCP) Rank() int { return t.rank }
func (t *TCP) Size() int { return len(t.addrs) }

func encodeHeader(b *[headerWireSize]byte, hdr Header, payloadLen int) {
	b[0] = byte(hdr.Kind)
	b[1] = hdr.Flags
	binary.LittleEndian.PutUint64(b[2:], hdr.Tag)
	binary.LittleEndian.PutUint64(b[10:], hdr.MsgID)
	binary.LittleEndian.PutUint64(b[18:], uint64(hdr.Offset))
	binary.LittleEndian.PutUint64(b[26:], uint64(hdr.Total))
	binary.LittleEndian.PutUint64(b[34:], uint64(hdr.Aux0))
	// Aux1's top bits are never used by transports, so the wire encoding
	// borrows no extra space: payload length travels in its own field.
	binary.LittleEndian.PutUint64(b[42:], uint64(hdr.Aux1))
	_ = payloadLen
}

func decodeHeader(b []byte) Header {
	return Header{
		Kind:   Kind(b[0]),
		Flags:  b[1],
		Tag:    binary.LittleEndian.Uint64(b[2:]),
		MsgID:  binary.LittleEndian.Uint64(b[10:]),
		Offset: int64(binary.LittleEndian.Uint64(b[18:])),
		Total:  int64(binary.LittleEndian.Uint64(b[26:])),
		Aux0:   int64(binary.LittleEndian.Uint64(b[34:])),
		Aux1:   int64(binary.LittleEndian.Uint64(b[42:])),
	}
}

// writeFrame sends one length-prefixed frame using a gather write.
func (t *TCP) writeFrame(conn *tcpConn, hdr Header, payload ...[]byte) error {
	total := 0
	for _, p := range payload {
		total += len(p)
	}
	if total > MaxFragSize {
		return fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", total, MaxFragSize)
	}
	var pre [4 + headerWireSize]byte
	binary.LittleEndian.PutUint32(pre[:4], uint32(total))
	var hb [headerWireSize]byte
	encodeHeader(&hb, hdr, total)
	copy(pre[4:], hb[:])
	bufs := make(net.Buffers, 0, 1+len(payload))
	bufs = append(bufs, pre[:])
	for _, p := range payload {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	spin(t.cfg.PerPacket)
	conn.wmu.Lock()
	defer conn.wmu.Unlock()
	_, err := bufs.WriteTo(conn.c)
	return err
}

func (t *TCP) Send(to int, hdr Header, payload ...[]byte) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	return t.writeFrame(conn, hdr, payload...)
}

func (t *TCP) SendFrom(to int, hdr Header, src Source, off, size int64) (int64, error) {
	conn, err := t.conn(to)
	if err != nil {
		return 0, err
	}
	if size > MaxFragSize {
		return 0, fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", size, MaxFragSize)
	}
	// If the source exposes direct windows, gather them straight into the
	// socket; otherwise pack into a staging buffer first.
	if ds, ok := src.(DirectSource); ok {
		bufs := make([][]byte, 0, 8)
		at, left := off, size
		for left > 0 {
			w, ok := ds.Window(at, left)
			if !ok || len(w) == 0 {
				bufs = nil
				break
			}
			bufs = append(bufs, w)
			at += int64(len(w))
			left -= int64(len(w))
		}
		if bufs != nil {
			return size, t.writeFrame(conn, hdr, bufs...)
		}
	}
	buf := t.pool.get(int(size))
	defer t.pool.put(buf)
	staging := (*buf)[:size]
	got, err := src.ReadAt(staging, off)
	if err != nil && err != io.EOF {
		return 0, err
	}
	if got == 0 && size > 0 {
		return 0, ErrShortTransfer
	}
	return int64(got), t.writeFrame(conn, hdr, staging[:got])
}

func (t *TCP) conn(to int) (*tcpConn, error) {
	if to < 0 || to >= len(t.conns) {
		return nil, rangeErr("destination", to, len(t.conns))
	}
	if to == t.rank {
		return nil, errors.New("fabric: self-send not supported over TCP provider")
	}
	c := t.conns[to]
	if c == nil {
		return nil, ErrClosed
	}
	return c, nil
}

func (t *TCP) Recv() (*Packet, bool) {
	select {
	case pkt := <-t.inbox:
		return pkt, true
	case <-t.done:
		select {
		case pkt := <-t.inbox:
			return pkt, true
		default:
			return nil, false
		}
	}
}

func (t *TCP) Register(src Source) uint64 {
	key := t.nextKey.Add(1)
	t.regMu.Lock()
	t.regs[key] = src
	t.regMu.Unlock()
	return key
}

func (t *TCP) Deregister(key uint64) {
	t.regMu.Lock()
	delete(t.regs, key)
	t.regMu.Unlock()
}

func (t *TCP) Get(from int, key uint64, off int64, sink Sink, sinkOff, size int64) error {
	if size == 0 {
		return nil
	}
	conn, err := t.conn(from)
	if err != nil {
		return err
	}
	id := t.nextGet.Add(1)
	g := &tcpGet{sink: sink, sinkOff: sinkOff - off, left: size, done: make(chan error, 1)}
	t.getMu.Lock()
	t.gets[id] = g
	t.getMu.Unlock()
	defer func() {
		t.getMu.Lock()
		delete(t.gets, id)
		t.getMu.Unlock()
	}()
	req := Header{Kind: kindGetReq, MsgID: id, Offset: off, Total: size, Aux1: int64(key)}
	if err := t.writeFrame(conn, req); err != nil {
		return err
	}
	select {
	case err := <-g.done:
		return err
	case <-t.done:
		return ErrClosed
	}
}

// serveGet streams a registered source back to the requester in fragments.
func (t *TCP) serveGet(conn *tcpConn, hdr Header) {
	key := uint64(hdr.Aux1)
	t.regMu.RLock()
	src, ok := t.regs[key]
	t.regMu.RUnlock()
	fail := func(msg string) {
		_ = t.writeFrame(conn, Header{Kind: kindGetErr, MsgID: hdr.MsgID}, []byte(msg))
	}
	if !ok {
		fail(ErrBadKey.Error())
		return
	}
	off, left := hdr.Offset, hdr.Total
	pb := t.pool.get(t.cfg.FragSize)
	defer t.pool.put(pb)
	buf := (*pb)[:t.cfg.FragSize]
	for left > 0 {
		step := int64(len(buf))
		if step > left {
			step = left
		}
		n, err := src.ReadAt(buf[:step], off)
		if err != nil && err != io.EOF {
			fail(err.Error())
			return
		}
		if n == 0 {
			fail(ErrShortTransfer.Error())
			return
		}
		resp := Header{Kind: kindGetResp, MsgID: hdr.MsgID, Offset: off, Total: hdr.Total}
		if err := t.writeFrame(conn, resp, buf[:n]); err != nil {
			return
		}
		off += int64(n)
		left -= int64(n)
	}
}

func (t *TCP) readLoop(conn *tcpConn) {
	br := conn.c
	var pre [4 + headerWireSize]byte
	for {
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			t.Close()
			return
		}
		plen := int(binary.LittleEndian.Uint32(pre[:4]))
		hdr := decodeHeader(pre[4:])
		var payload []byte
		var pbuf *[]byte
		if plen > 0 {
			pbuf = t.pool.get(plen)
			payload = (*pbuf)[:plen]
			if _, err := io.ReadFull(br, payload); err != nil {
				t.pool.put(pbuf)
				t.Close()
				return
			}
		}
		// Frames consumed inline return their buffer here; inbox packets
		// carry it until the transport calls Release.
		putback := func() {
			if pbuf != nil {
				t.pool.put(pbuf)
			}
		}
		switch hdr.Kind {
		case kindGetReq:
			putback()
			go t.serveGet(conn, hdr)
		case kindGetResp:
			t.getMu.Lock()
			g := t.gets[hdr.MsgID]
			t.getMu.Unlock()
			if g == nil {
				putback()
				continue
			}
			_, err := g.sink.WriteAt(payload, g.sinkOff+hdr.Offset)
			putback()
			if err != nil {
				g.done <- err
				continue
			}
			if atomic.AddInt64(&g.left, -int64(plen)) <= 0 {
				g.done <- nil
			}
		case kindGetErr:
			t.getMu.Lock()
			g := t.gets[hdr.MsgID]
			t.getMu.Unlock()
			if g != nil {
				g.done <- errors.New("fabric: remote get: " + string(payload))
			}
			putback()
		default:
			pkt := &Packet{From: conn.peer, Hdr: hdr, Payload: payload, release: putback}
			select {
			case t.inbox <- pkt:
			case <-t.done:
				putback()
				return
			}
		}
	}
}

// Close shuts the provider down and closes all sockets.
func (t *TCP) Close() error {
	t.once.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		for _, c := range t.conns {
			if c != nil {
				c.c.Close()
			}
		}
	})
	return nil
}
