package fabric

import "fmt"

// TCP is a fabric provider connecting separate processes over real
// sockets. Gather sends use net.Buffers (writev) so region lists reach the
// kernel without an intermediate application copy, mirroring how UCX hands
// an iovec to the verbs layer. It is a thin specialization of the shared
// byte-stream core (see stream.go), which also carries the SHM provider's
// control and spill plane over unix sockets.
//
// Connections are established lazily: the first send toward a peer dials
// it, so a rank that talks to k peers holds k sockets instead of Size-1
// (Config.EagerMesh restores the old dial-everything-at-startup
// behaviour). Broken connections are redialed with exponential backoff by
// the higher rank; while a link is down, sends to and Gets from that peer
// fail with ErrLinkDown so the transport layer can retry.
type TCP struct {
	*stream
}

// ListenTCP binds rank's endpoint at bind (which may name an ephemeral
// port, e.g. "127.0.0.1:0") without requiring the peer address table yet.
// The bound address is available from Addr for a bootstrap exchange;
// Join supplies the table once every rank has reported in.
func ListenTCP(rank, size int, bind string, cfg Config) (*TCP, error) {
	s, err := newStream("tcp", rank, size, bind, cfg)
	if err != nil {
		return nil, err
	}
	return &TCP{stream: s}, nil
}

// Join provides the full peer address table (addrs[i] is rank i's bound
// address). With Config.EagerMesh set it dials every lower rank and
// blocks until the full mesh is up or Config.DialTimeout passes, in which
// case the error names every missing peer; otherwise it returns
// immediately and connections come up on first use.
func (t *TCP) Join(addrs []string) error { return t.join(addrs) }

// NewTCP attaches rank to a TCP fabric whose rank i listens at addrs[i] —
// the single-call path for callers that know every address up front.
// Equivalent to ListenTCP followed by Join.
func NewTCP(rank int, addrs []string, cfg Config) (*TCP, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, rangeErr("local", rank, len(addrs))
	}
	t, err := ListenTCP(rank, len(addrs), addrs[rank], cfg)
	if err != nil {
		return nil, err
	}
	if err := t.Join(addrs); err != nil {
		t.Close()
		return nil, fmt.Errorf("%w", err)
	}
	return t, nil
}
