package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Reserved header kinds used internally by byte-stream providers for the
// Get (RDMA-read emulation) protocol. Transports must keep their own kinds
// below KindFabricReserved; within the reserved range the heartbeat
// detector owns the low values (0xF0..0xF7), providers the high ones —
// these frames are consumed by the provider's read loop and must never
// shadow detector traffic that has to reach Recv.
const (
	kindGetReq  Kind = 0xF8
	kindGetResp Kind = 0xF9
	kindGetErr  Kind = 0xFA
)

// TCP is a fabric provider connecting separate processes over real
// sockets. Gather sends use net.Buffers (writev) so region lists reach the
// kernel without an intermediate application copy, mirroring how UCX hands
// an iovec to the verbs layer.
//
// Broken connections are redialed with exponential backoff by the side
// that originally dialed (the higher rank); the accept side keeps its
// listener open for the lifetime of the provider and installs
// replacement connections as they arrive. While a link is down, sends to
// and Gets from that peer fail with ErrLinkDown so the transport layer
// can retry.
type TCP struct {
	cfg   Config
	rank  int
	addrs []string
	pool  *bufPool // frame payload and staging buffers

	ln    net.Listener
	inbox chan *Packet
	done  chan struct{}
	once  sync.Once

	// connsMu guards conns and redialing: accept-side installs,
	// dial-side installs and disconnect teardown all mutate the
	// connection map from different goroutines.
	connsMu   sync.RWMutex
	conns     []*tcpConn
	redialing map[int]bool

	regMu   sync.RWMutex
	regs    map[uint64]Source
	nextKey atomic.Uint64

	getMu   sync.Mutex
	gets    map[uint64]*tcpGet
	nextGet atomic.Uint64

	// Link-health counters, exported as gauges when Config.Obs is set.
	connDrops    atomic.Int64 // connections torn down after a socket failure
	redials      atomic.Int64 // redial campaigns started
	redialsOK    atomic.Int64 // redial campaigns that re-established the link
	checksumErrs atomic.Int64 // Get frames rejected by CRC verification
}

type tcpConn struct {
	peer int
	c    net.Conn
	wmu  sync.Mutex
}

type tcpGet struct {
	peer    int
	sink    Sink
	sinkOff int64 // sink offset corresponding to remote offset 0 of this get
	left    int64
	done    chan error
}

// DialTimeout bounds full-mesh connection establishment and each redial
// campaign after a connection breaks. A variable so tests can shorten it.
var DialTimeout = 30 * time.Second

// DialBackoff paces connection attempts during establishment and redial.
var DialBackoff = Backoff{Base: 20 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.25}

// NewTCP attaches rank to a TCP fabric whose rank i listens at addrs[i].
// Establishment is deterministic: rank i accepts connections from every
// higher rank and dials every lower rank. The call blocks until the full
// mesh is up or DialTimeout passes, in which case the error names every
// missing peer.
func NewTCP(rank int, addrs []string, cfg Config) (*TCP, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, rangeErr("local", rank, len(addrs))
	}
	cfg = NewConfig(cfg)
	t := &TCP{
		cfg:       cfg,
		rank:      rank,
		addrs:     addrs,
		pool:      newBufPool(cfg.FragSize),
		conns:     make([]*tcpConn, len(addrs)),
		redialing: make(map[int]bool),
		inbox:     make(chan *Packet, cfg.InboxDepth),
		done:      make(chan struct{}),
		regs:      make(map[uint64]Source),
		gets:      make(map[uint64]*tcpGet),
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("fabric: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	t.ln = ln
	if reg := cfg.Obs; reg != nil {
		p := func(name string) string { return fmt.Sprintf("fabric.r%d.%s", rank, name) }
		reg.GaugeFunc(p("tcp_conn_drops"), t.connDrops.Load)
		reg.GaugeFunc(p("tcp_redials"), t.redials.Load)
		reg.GaugeFunc(p("tcp_redials_ok"), t.redialsOK.Load)
		reg.GaugeFunc(p("tcp_checksum_errs"), t.checksumErrs.Load)
		reg.GaugeFunc(p("pool_outstanding"), t.pool.Outstanding)
	}
	go t.acceptLoop()

	// Dial every lower rank concurrently.
	errc := make(chan error, rank)
	for peer := 0; peer < rank; peer++ {
		go func(peer int) {
			errc <- t.dialPeer(peer)
		}(peer)
	}
	deadline := time.Now().Add(DialTimeout)
	for {
		select {
		case err := <-errc:
			if err != nil {
				t.Close()
				return nil, err
			}
			continue
		default:
		}
		if missing := t.missingPeers(); len(missing) == 0 {
			return t, nil
		} else if time.Now().After(deadline) {
			t.Close()
			return nil, fmt.Errorf("fabric: rank %d mesh incomplete after %v: missing peer(s) %v",
				rank, DialTimeout, missing)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// missingPeers lists every rank the full mesh still lacks a connection to.
func (t *TCP) missingPeers() []int {
	t.connsMu.RLock()
	defer t.connsMu.RUnlock()
	var missing []int
	for peer, conn := range t.conns {
		if peer != t.rank && conn == nil {
			missing = append(missing, peer)
		}
	}
	return missing
}

// acceptLoop installs inbound connections (initial mesh and redials from
// higher ranks) for the provider's lifetime.
func (t *TCP) acceptLoop() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		go t.handleHello(c)
	}
}

// handleHello validates an inbound connection's rank announcement and
// installs it. Only higher ranks dial us; anything else is dropped (the
// dialer will retry, and mesh establishment reports who is missing).
func (t *TCP) handleHello(c net.Conn) {
	var hello [4]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		c.Close()
		return
	}
	peer := int(binary.LittleEndian.Uint32(hello[:]))
	if peer <= t.rank || peer >= len(t.addrs) {
		connTrace(t.rank, -1, cevHelloReject, int64(peer))
		c.Close()
		return
	}
	t.installConn(peer, c)
}

// dialPeer connects to a lower rank, retrying with backoff until
// DialTimeout. Used for both initial establishment and redial.
func (t *TCP) dialPeer(peer int) error {
	rng := rand.New(rand.NewSource(int64(t.rank)<<20 ^ int64(peer)))
	deadline := time.Now().Add(DialTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		select {
		case <-t.done:
			return ErrClosed
		default:
		}
		c, err := net.DialTimeout("tcp", t.addrs[peer], time.Second)
		if err == nil {
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(t.rank))
			if _, werr := c.Write(hello[:]); werr == nil {
				t.installConn(peer, c)
				connTrace(t.rank, peer, cevDialOK, 0)
				return nil
			} else {
				err = werr
				c.Close()
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			connTrace(t.rank, peer, cevDialFail, 0)
			return fmt.Errorf("fabric: rank %d dial rank %d (%s): %w", t.rank, peer, t.addrs[peer], lastErr)
		}
		d := DialBackoff.Delay(attempt, rng)
		select {
		case <-t.done:
			return ErrClosed
		case <-time.After(d):
		}
	}
}

// installConn publishes a connection for peer (replacing any broken
// predecessor) and starts its read loop.
func (t *TCP) installConn(peer int, c net.Conn) {
	conn := &tcpConn{peer: peer, c: c}
	t.connsMu.Lock()
	old := t.conns[peer]
	t.conns[peer] = conn
	delete(t.redialing, peer)
	t.connsMu.Unlock()
	var replaced int64
	if old != nil {
		replaced = 1
		old.c.Close()
	}
	connTrace(t.rank, peer, cevInstall, replaced)
	go t.readLoop(conn)
}

// dropConn tears down a broken connection, fails its outstanding Gets
// with ErrLinkDown, and — when this side originally dialed the peer —
// starts a redial campaign. The accept side instead waits for the peer
// to dial back in.
func (t *TCP) dropConn(conn *tcpConn, site int64) {
	select {
	case <-t.done:
		return
	default:
	}
	t.connsMu.Lock()
	if t.conns[conn.peer] != conn {
		// Already replaced or dropped by a concurrent failure.
		t.connsMu.Unlock()
		connTrace(t.rank, conn.peer, cevDropStale, site)
		conn.c.Close()
		return
	}
	t.conns[conn.peer] = nil
	connTrace(t.rank, conn.peer, cevDrop, site)
	t.connDrops.Add(1)
	redial := t.rank > conn.peer && !t.redialing[conn.peer]
	if redial {
		t.redialing[conn.peer] = true
	}
	t.connsMu.Unlock()
	conn.c.Close()
	t.failGets(conn.peer)
	if redial {
		t.redials.Add(1)
		go func() {
			if err := t.dialPeer(conn.peer); err != nil {
				// Give up: the link stays down and sends keep
				// returning ErrLinkDown.
				t.connsMu.Lock()
				delete(t.redialing, conn.peer)
				t.connsMu.Unlock()
				return
			}
			t.redialsOK.Add(1)
		}()
	}
}

// failGets fails every outstanding Get against peer so pullers blocked
// on a dead connection unblock and can retry.
func (t *TCP) failGets(peer int) {
	t.getMu.Lock()
	defer t.getMu.Unlock()
	for _, g := range t.gets {
		if g.peer != peer {
			continue
		}
		select {
		case g.done <- fmt.Errorf("%w: connection to rank %d broke mid-pull", ErrLinkDown, peer):
		default:
		}
	}
}

func (t *TCP) Rank() int { return t.rank }
func (t *TCP) Size() int { return len(t.addrs) }

// PoolOutstanding returns the number of frame buffers currently checked
// out of this endpoint's pool (zero when quiesced); see
// Inproc.PoolOutstanding.
func (t *TCP) PoolOutstanding() int64 { return t.pool.Outstanding() }

func encodeHeader(b *[headerWireSize]byte, hdr Header) {
	b[0] = byte(hdr.Kind)
	b[1] = hdr.Flags
	binary.LittleEndian.PutUint64(b[2:], hdr.Tag)
	binary.LittleEndian.PutUint64(b[10:], hdr.MsgID)
	binary.LittleEndian.PutUint64(b[18:], uint64(hdr.Offset))
	binary.LittleEndian.PutUint64(b[26:], uint64(hdr.Total))
	binary.LittleEndian.PutUint64(b[34:], uint64(hdr.Aux0))
	binary.LittleEndian.PutUint64(b[42:], uint64(hdr.Aux1))
}

func decodeHeader(b []byte) Header {
	return Header{
		Kind:   Kind(b[0]),
		Flags:  b[1],
		Tag:    binary.LittleEndian.Uint64(b[2:]),
		MsgID:  binary.LittleEndian.Uint64(b[10:]),
		Offset: int64(binary.LittleEndian.Uint64(b[18:])),
		Total:  int64(binary.LittleEndian.Uint64(b[26:])),
		Aux0:   int64(binary.LittleEndian.Uint64(b[34:])),
		Aux1:   int64(binary.LittleEndian.Uint64(b[42:])),
	}
}

// writeFrame sends one length-prefixed frame using a gather write. A
// socket failure tears the connection down (starting redial where this
// side dials) and reports ErrLinkDown.
func (t *TCP) writeFrame(conn *tcpConn, hdr Header, payload ...[]byte) error {
	total := 0
	for _, p := range payload {
		total += len(p)
	}
	if total > MaxFragSize {
		return fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", total, MaxFragSize)
	}
	var pre [4 + headerWireSize]byte
	binary.LittleEndian.PutUint32(pre[:4], uint32(total))
	var hb [headerWireSize]byte
	encodeHeader(&hb, hdr)
	copy(pre[4:], hb[:])
	bufs := make(net.Buffers, 0, 1+len(payload))
	bufs = append(bufs, pre[:])
	for _, p := range payload {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	spin(t.cfg.PerPacket)
	conn.wmu.Lock()
	_, err := bufs.WriteTo(conn.c)
	conn.wmu.Unlock()
	if err != nil {
		t.dropConn(conn, dropSiteWrite)
		return fmt.Errorf("%w: write to rank %d: %v", ErrLinkDown, conn.peer, err)
	}
	return nil
}

func (t *TCP) Send(to int, hdr Header, payload ...[]byte) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	return t.writeFrame(conn, hdr, payload...)
}

func (t *TCP) SendFrom(to int, hdr Header, src Source, off, size int64) (int64, error) {
	conn, err := t.conn(to)
	if err != nil {
		return 0, err
	}
	if size > MaxFragSize {
		return 0, fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", size, MaxFragSize)
	}
	// If the source exposes direct windows, gather them straight into the
	// socket; otherwise pack into a staging buffer first.
	if ds, ok := src.(DirectSource); ok {
		bufs := make([][]byte, 0, 8)
		at, left := off, size
		for left > 0 {
			w, ok := ds.Window(at, left)
			if !ok || len(w) == 0 {
				bufs = nil
				break
			}
			bufs = append(bufs, w)
			at += int64(len(w))
			left -= int64(len(w))
		}
		if bufs != nil {
			return size, t.writeFrame(conn, hdr, bufs...)
		}
	}
	buf := t.pool.get(int(size))
	defer t.pool.put(buf)
	staging := (*buf)[:size]
	got, err := src.ReadAt(staging, off)
	if err != nil && err != io.EOF {
		return 0, err
	}
	if got == 0 && size > 0 {
		return 0, ErrShortTransfer
	}
	return int64(got), t.writeFrame(conn, hdr, staging[:got])
}

func (t *TCP) conn(to int) (*tcpConn, error) {
	if to < 0 || to >= len(t.addrs) {
		return nil, rangeErr("destination", to, len(t.addrs))
	}
	if to == t.rank {
		return nil, errors.New("fabric: self-send not supported over TCP provider")
	}
	t.connsMu.RLock()
	c := t.conns[to]
	t.connsMu.RUnlock()
	if c == nil {
		select {
		case <-t.done:
			return nil, ErrClosed
		default:
			return nil, fmt.Errorf("%w: no connection to rank %d", ErrLinkDown, to)
		}
	}
	return c, nil
}

func (t *TCP) Recv() (*Packet, bool) {
	select {
	case pkt := <-t.inbox:
		return pkt, true
	case <-t.done:
		select {
		case pkt := <-t.inbox:
			return pkt, true
		default:
			return nil, false
		}
	}
}

func (t *TCP) Register(src Source) uint64 {
	key := t.nextKey.Add(1)
	t.regMu.Lock()
	t.regs[key] = src
	t.regMu.Unlock()
	return key
}

func (t *TCP) Deregister(key uint64) {
	t.regMu.Lock()
	delete(t.regs, key)
	t.regMu.Unlock()
}

func (t *TCP) Get(from int, key uint64, off int64, sink Sink, sinkOff, size int64) error {
	if size == 0 {
		return nil
	}
	conn, err := t.conn(from)
	if err != nil {
		return err
	}
	id := t.nextGet.Add(1)
	g := &tcpGet{peer: from, sink: sink, sinkOff: sinkOff - off, left: size, done: make(chan error, 1)}
	t.getMu.Lock()
	t.gets[id] = g
	t.getMu.Unlock()
	defer func() {
		t.getMu.Lock()
		delete(t.gets, id)
		t.getMu.Unlock()
	}()
	req := Header{Kind: kindGetReq, MsgID: id, Offset: off, Total: size, Aux1: int64(key)}
	if err := t.writeFrame(conn, req); err != nil {
		return err
	}
	select {
	case err := <-g.done:
		return err
	case <-t.done:
		return ErrClosed
	}
}

// serveGet streams a registered source back to the requester in fragments.
// With Config.Checksum set, every response frame carries a CRC32C of its
// payload in Aux0 for verification before delivery.
func (t *TCP) serveGet(conn *tcpConn, hdr Header) {
	key := uint64(hdr.Aux1)
	t.regMu.RLock()
	src, ok := t.regs[key]
	t.regMu.RUnlock()
	fail := func(msg string) {
		_ = t.writeFrame(conn, Header{Kind: kindGetErr, MsgID: hdr.MsgID}, []byte(msg))
	}
	if !ok {
		fail(ErrBadKey.Error())
		return
	}
	off, left := hdr.Offset, hdr.Total
	pb := t.pool.get(t.cfg.FragSize)
	defer t.pool.put(pb)
	buf := (*pb)[:t.cfg.FragSize]
	for left > 0 {
		step := int64(len(buf))
		if step > left {
			step = left
		}
		n, err := src.ReadAt(buf[:step], off)
		if err != nil && err != io.EOF {
			fail(err.Error())
			return
		}
		if n == 0 {
			fail(ErrShortTransfer.Error())
			return
		}
		resp := Header{Kind: kindGetResp, MsgID: hdr.MsgID, Offset: off, Total: hdr.Total}
		if t.cfg.Checksum {
			resp.Aux0 = int64(CRC32(buf[:n]))
		}
		if err := t.writeFrame(conn, resp, buf[:n]); err != nil {
			return
		}
		off += int64(n)
		left -= int64(n)
	}
}

func (t *TCP) readLoop(conn *tcpConn) {
	br := conn.c
	var pre [4 + headerWireSize]byte
	for {
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			t.dropConn(conn, dropSiteHeader)
			return
		}
		plen := int(binary.LittleEndian.Uint32(pre[:4]))
		hdr := decodeHeader(pre[4:])
		var payload []byte
		var pbuf *[]byte
		if plen > 0 {
			pbuf = t.pool.get(plen)
			payload = (*pbuf)[:plen]
			if _, err := io.ReadFull(br, payload); err != nil {
				t.pool.put(pbuf)
				t.dropConn(conn, dropSitePayload)
				return
			}
		}
		// Frames consumed inline return their buffer here; inbox packets
		// carry it until the transport calls Release.
		putback := func() {
			if pbuf != nil {
				t.pool.put(pbuf)
			}
		}
		switch hdr.Kind {
		case kindGetReq:
			putback()
			go t.serveGet(conn, hdr)
		case kindGetResp:
			t.getMu.Lock()
			g := t.gets[hdr.MsgID]
			t.getMu.Unlock()
			if g == nil {
				putback()
				continue
			}
			if t.cfg.Checksum && CRC32(payload) != uint32(uint64(hdr.Aux0)) {
				t.checksumErrs.Add(1)
				putback()
				select {
				case g.done <- fmt.Errorf("%w: rendezvous pull frame at offset %d", ErrCorrupt, hdr.Offset):
				default:
				}
				continue
			}
			_, err := g.sink.WriteAt(payload, g.sinkOff+hdr.Offset)
			putback()
			if err != nil {
				g.done <- err
				continue
			}
			if atomic.AddInt64(&g.left, -int64(plen)) <= 0 {
				g.done <- nil
			}
		case kindGetErr:
			t.getMu.Lock()
			g := t.gets[hdr.MsgID]
			t.getMu.Unlock()
			if g != nil {
				g.done <- errors.New("fabric: remote get: " + string(payload))
			}
			putback()
		default:
			pkt := &Packet{From: conn.peer, Hdr: hdr, Payload: payload, release: putback}
			select {
			case t.inbox <- pkt:
			case <-t.done:
				putback()
				return
			}
		}
	}
}

// Close shuts the provider down and closes all sockets.
func (t *TCP) Close() error {
	t.once.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		t.connsMu.Lock()
		conns := append([]*tcpConn(nil), t.conns...)
		t.connsMu.Unlock()
		for _, c := range conns {
			if c != nil {
				c.c.Close()
			}
		}
	})
	return nil
}
