package fabric

import "io"

// Transfer moves n bytes from src[off:] into sink[sinkOff:] without
// touching the wire, using direct windows when both ends allow it. It is
// the self-send path: the loopback analogue of a Get.
func Transfer(src Source, off int64, sink Sink, sinkOff, n int64, bounce []byte) error {
	if len(bounce) == 0 {
		bounce = make([]byte, DefaultFragSize)
	}
	return pull(src, off, sink, sinkOff, n, bounce, nil)
}

// pull moves n bytes from src[off:] into sink[sinkOff:], using direct
// memory windows on both ends when available. This is the core of the
// rendezvous (RDMA-read analogue) path and is shared by providers.
//
// Direct access is re-evaluated per window because composite streams mix
// direct and callback-backed ranges (a custom datatype's wire image is a
// packed part followed by raw regions).
//
// Copy accounting:
//   - direct source + direct sink: one copy per byte;
//   - one generic end: the generic callback reads from / writes into the
//     other end's window directly, still one pass over the bytes;
//   - both generic: bounce through a staging buffer, two passes.
//
// bounce must be non-empty; it bounds the window size per iteration.
func pull(src Source, off int64, sink Sink, sinkOff, n int64, bounce []byte, perWindow func()) error {
	ds, _ := src.(DirectSource)
	dk, _ := sink.(DirectSink)
	for n > 0 {
		if perWindow != nil {
			perWindow()
		}
		step := int64(len(bounce))
		if step > n {
			step = n
		}
		var (
			sv     []byte
			dv     []byte
			srcOK  bool
			sinkOK bool
		)
		if ds != nil {
			sv, srcOK = ds.Window(off, step)
			if srcOK && len(sv) == 0 {
				srcOK = false
			}
		}
		switch {
		case srcOK:
			if dk != nil {
				dv, sinkOK = dk.Window(sinkOff, int64(len(sv)))
				if sinkOK && len(dv) == 0 {
					sinkOK = false
				}
			}
			var m int
			if sinkOK {
				m = copy(dv, sv)
			} else {
				// Generic sink unpacks straight from the source window.
				var err error
				m, err = sink.WriteAt(sv, sinkOff)
				if err != nil {
					return err
				}
			}
			if m == 0 {
				return ErrShortTransfer
			}
			off += int64(m)
			sinkOff += int64(m)
			n -= int64(m)
		default:
			if dk != nil {
				dv, sinkOK = dk.Window(sinkOff, step)
				if sinkOK && len(dv) == 0 {
					sinkOK = false
				}
			}
			if sinkOK {
				// Generic source packs straight into the destination window.
				m, err := src.ReadAt(dv, off)
				if err != nil && err != io.EOF {
					return err
				}
				if m == 0 {
					return ErrShortTransfer
				}
				off += int64(m)
				sinkOff += int64(m)
				n -= int64(m)
				continue
			}
			// Both ends are callback-driven: stage through the bounce
			// buffer (pack copy + unpack copy).
			m, err := src.ReadAt(bounce[:step], off)
			if err != nil && err != io.EOF {
				return err
			}
			if m == 0 {
				return ErrShortTransfer
			}
			w, err := sink.WriteAt(bounce[:m], sinkOff)
			if err != nil {
				return err
			}
			if w != m {
				return ErrShortTransfer
			}
			off += int64(m)
			sinkOff += int64(m)
			n -= int64(m)
		}
	}
	return nil
}
