package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// A Ring is a single-producer/single-consumer byte ring designed to live
// in memory shared between two processes (an mmap'd file) — the eager
// lane of the SHM provider. It also works over any plain byte slice,
// which is how the unit tests drive it under the race detector: all
// cross-goroutine publication happens through sync/atomic loads and
// stores on the head/tail words, so the detector observes the same
// happens-before edges the hardware provides across processes.
//
// Memory layout (64-byte header, then the data area):
//
//	[ 0.. 8) tail   — producer cursor, free-running byte count
//	[ 8..16) head   — consumer cursor, free-running byte count
//	[16..24) closed — nonzero once the producer is done
//	[24..32) cap    — data-area capacity, for attach-time validation
//	[32..64) reserved
//
// Records are length-prefixed ([4-byte little-endian length][payload])
// and padded to 8-byte alignment. A record never wraps: when it does not
// fit in the space before the end of the data area, the producer writes
// a skip marker (length 0xFFFFFFFF) and continues at offset zero, so a
// consumer always sees each record as one contiguous slice.
//
// The producer publishes with a release store of tail after the record
// bytes are written; the consumer acknowledges with a release store of
// head after it is done with the record view. Neither side ever writes
// the other's cursor, so no compare-and-swap is needed anywhere.
type Ring struct {
	mem  []byte
	data []byte
	cap  uint64

	tail   *uint64
	head   *uint64
	closed *uint64

	// Producer-local reservation state (Reserve/Commit).
	resOff  uint64 // data offset of the reserved record's length word
	resSkip uint64 // bytes consumed by a skip marker before the record
	resMax  int    // payload bytes reserved
	resOpen bool
}

// RingHeaderSize is the byte overhead of the ring's shared header.
const RingHeaderSize = 64

const ringSkipMarker = 0xFFFFFFFF

// ErrRingTooSmall reports a backing buffer that cannot hold the header
// plus a power-of-two data area.
var ErrRingTooSmall = errors.New("fabric: ring buffer too small")

// RingMem returns an 8-byte-aligned in-process backing buffer for a ring
// with the given data capacity (rounded up to a power of two). Tests and
// single-process use; cross-process rings attach to an mmap'd file
// instead, which is page-aligned by construction.
func RingMem(capacity int) []byte {
	c := ringCapFor(capacity)
	words := make([]uint64, (RingHeaderSize+int(c))/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
}

// ringCapFor rounds capacity up to a power of two, minimum 1 KiB.
func ringCapFor(capacity int) uint64 {
	c := uint64(1024)
	for c < uint64(capacity) {
		c <<= 1
	}
	return c
}

// AttachRing lays a Ring over mem. With init set the header is written
// fresh (the creator side); otherwise the header is validated against
// the buffer size (the attaching side). mem must be 8-byte aligned and
// hold RingHeaderSize plus a power-of-two data area.
func AttachRing(mem []byte, init bool) (*Ring, error) {
	if len(mem) < RingHeaderSize+1024 {
		return nil, ErrRingTooSmall
	}
	if uintptr(unsafe.Pointer(&mem[0]))%8 != 0 {
		return nil, errors.New("fabric: ring buffer not 8-byte aligned")
	}
	capacity := uint64(len(mem) - RingHeaderSize)
	if capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("fabric: ring data area %d is not a power of two", capacity)
	}
	r := &Ring{
		mem:    mem,
		data:   mem[RingHeaderSize:],
		cap:    capacity,
		tail:   (*uint64)(unsafe.Pointer(&mem[0])),
		head:   (*uint64)(unsafe.Pointer(&mem[8])),
		closed: (*uint64)(unsafe.Pointer(&mem[16])),
	}
	capWord := (*uint64)(unsafe.Pointer(&mem[24]))
	if init {
		atomic.StoreUint64(r.tail, 0)
		atomic.StoreUint64(r.head, 0)
		atomic.StoreUint64(r.closed, 0)
		atomic.StoreUint64(capWord, capacity)
	} else if got := atomic.LoadUint64(capWord); got != capacity {
		return nil, fmt.Errorf("fabric: ring capacity mismatch: header says %d, buffer holds %d", got, capacity)
	}
	return r, nil
}

// Cap returns the data-area capacity in bytes.
func (r *Ring) Cap() int { return int(r.cap) }

// recordSpan returns the padded byte span of a record with an n-byte
// payload.
func recordSpan(n int) uint64 { return uint64(4+n+7) &^ 7 }

// Reserve claims a contiguous n-byte payload area in the ring, returning
// a slice the caller fills before Commit. It returns nil,false when the
// ring lacks space (the caller spills to the control socket) or is
// closed. Only one reservation may be open at a time — the ring is
// single-producer.
func (r *Ring) Reserve(n int) ([]byte, bool) {
	if r.resOpen {
		panic("fabric: Ring.Reserve with a reservation already open")
	}
	span := recordSpan(n)
	if span > r.cap/2 || atomic.LoadUint64(r.closed) != 0 {
		return nil, false
	}
	tail := atomic.LoadUint64(r.tail)
	head := atomic.LoadUint64(r.head)
	pos := tail & (r.cap - 1)
	skip := uint64(0)
	if pos+span > r.cap {
		// The record would straddle the end of the data area: skip to the
		// start. The skipped span counts against the free space.
		skip = r.cap - pos
	}
	if tail+skip+span-head > r.cap {
		return nil, false
	}
	if skip > 0 {
		binary.LittleEndian.PutUint32(r.data[pos:], ringSkipMarker)
		pos = 0
	}
	r.resOff = pos
	r.resSkip = skip
	r.resMax = n
	r.resOpen = true
	return r.data[pos+4 : pos+4+uint64(n)], true
}

// Commit publishes the open reservation with its final payload length
// (n may be less than reserved when the filler packed partially).
func (r *Ring) Commit(n int) {
	if !r.resOpen || n < 0 || n > r.resMax {
		panic("fabric: Ring.Commit without a matching Reserve")
	}
	r.resOpen = false
	binary.LittleEndian.PutUint32(r.data[r.resOff:], uint32(n))
	tail := atomic.LoadUint64(r.tail)
	// Release-store: everything written above happens-before a consumer
	// that observes the new tail.
	atomic.StoreUint64(r.tail, tail+r.resSkip+recordSpan(n))
}

// Abort cancels the open reservation without publishing anything.
func (r *Ring) Abort() { r.resOpen = false }

// Write is the one-shot producer path: it copies the slices, in order,
// into a single record. It reports false when the ring lacks space.
func (r *Ring) Write(payload ...[]byte) bool {
	n := 0
	for _, p := range payload {
		n += len(p)
	}
	buf, ok := r.Reserve(n)
	if !ok {
		return false
	}
	at := 0
	for _, p := range payload {
		at += copy(buf[at:], p)
	}
	r.Commit(n)
	return true
}

// Next returns a view of the next unconsumed record, or ok=false when
// the ring is empty. The view aliases ring memory and is valid only
// until Advance; consumers copy out before advancing.
func (r *Ring) Next() ([]byte, bool) {
	head := atomic.LoadUint64(r.head)
	for {
		tail := atomic.LoadUint64(r.tail) // acquire: record bytes below tail are visible
		if head == tail {
			return nil, false
		}
		pos := head & (r.cap - 1)
		l := binary.LittleEndian.Uint32(r.data[pos:])
		if l == ringSkipMarker {
			head += r.cap - pos
			// Acknowledge the skip immediately so the producer regains the
			// space even if no record follows yet.
			atomic.StoreUint64(r.head, head)
			continue
		}
		return r.data[pos+4 : pos+4+uint64(l)], true
	}
}

// Advance releases the record last returned by Next back to the
// producer.
func (r *Ring) Advance() {
	head := atomic.LoadUint64(r.head)
	pos := head & (r.cap - 1)
	l := binary.LittleEndian.Uint32(r.data[pos:])
	atomic.StoreUint64(r.head, head+recordSpan(int(l)))
}

// Close marks the producer side done. Consumers drain what remains and
// then observe Closed.
func (r *Ring) Close() { atomic.StoreUint64(r.closed, 1) }

// Closed reports whether the producer closed the ring.
func (r *Ring) Closed() bool { return atomic.LoadUint64(r.closed) != 0 }

// Empty reports whether every published record has been consumed.
func (r *Ring) Empty() bool {
	return atomic.LoadUint64(r.head) == atomic.LoadUint64(r.tail)
}
