package fabric

import (
	"sync"
	"sync/atomic"
)

// bufPool recycles wire buffers in FragSize-multiple size classes: class
// i holds buffers of capacity (i+1)*frag. Exact-FragSize buffers (the
// common eager-fragment and bounce-buffer case) land in class 0;
// oversized buffers — gather sends larger than one fragment, TCP frame
// payloads — are rounded up to the next fragment multiple instead of
// being thrown to the GC after every message.
//
// The pool tracks its checked-out buffer count: every pooled get
// increments outstanding and the matching put decrements it, so a
// quiesced fabric reads zero. Leak checks (obs.LeakSnapshot) diff the
// counter across a workload — a packet dropped without Release, or an
// error path that forgets its staging buffer, shows up as a stuck
// positive level rather than silent GC pressure.
type bufPool struct {
	frag        int
	classes     []sync.Pool
	outstanding atomic.Int64
}

// newBufPool sizes the class table to cover every legal fragment
// ([1, MaxFragSize] bytes); larger requests fall back to plain make and
// are not recycled.
func newBufPool(frag int) *bufPool {
	if frag <= 0 {
		frag = DefaultFragSize
	}
	n := (MaxFragSize + frag - 1) / frag
	if n < 1 {
		n = 1
	}
	return &bufPool{frag: frag, classes: make([]sync.Pool, n)}
}

// get returns a buffer with len == cap >= n. Callers slice to the size
// they need.
func (p *bufPool) get(n int) *[]byte {
	if n <= 0 {
		n = p.frag
	}
	ci := (n + p.frag - 1) / p.frag
	if ci > len(p.classes) {
		b := make([]byte, n)
		return &b
	}
	p.outstanding.Add(1)
	if v := p.classes[ci-1].Get(); v != nil {
		b := v.(*[]byte)
		*b = (*b)[:cap(*b)]
		return b
	}
	b := make([]byte, ci*p.frag)
	return &b
}

// Outstanding returns the number of pooled buffers currently checked
// out (gets minus puts of pool-classed buffers).
func (p *bufPool) Outstanding() int64 { return p.outstanding.Load() }

// put recycles a buffer obtained from get. Buffers whose capacity is not
// a pooled class size (foreign or oversized allocations) are dropped.
func (p *bufPool) put(b *[]byte) {
	c := cap(*b)
	if c < p.frag || c%p.frag != 0 {
		return
	}
	ci := c / p.frag
	if ci > len(p.classes) {
		return
	}
	p.outstanding.Add(-1)
	*b = (*b)[:c]
	p.classes[ci-1].Put(b)
}
