package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n distinct loopback ports and returns their addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// dialMesh brings up an n-rank TCP fabric on loopback with the full mesh
// established eagerly (these tests predate lazy dialing and some reach
// into connection state directly).
func dialMesh(t *testing.T, n int, cfg Config) []*TCP {
	t.Helper()
	cfg.EagerMesh = true
	addrs := freeAddrs(t, n)
	nics := make([]*TCP, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nic, err := NewTCP(i, addrs, cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("rank %d: %w", i, err)
				return
			}
			nics[i] = nic
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	t.Cleanup(func() {
		for _, nic := range nics {
			if nic != nil {
				nic.Close()
			}
		}
	})
	return nics
}

func TestTCPSendRecv(t *testing.T) {
	nics := dialMesh(t, 2, Config{})
	payload := make([]byte, 3000)
	fillPattern(payload, 4)
	hdr := Header{Kind: 5, Tag: 99, MsgID: 1, Offset: 10, Total: 3000, Aux0: -7, Aux1: 12345}
	if err := nics[0].Send(1, hdr, payload); err != nil {
		t.Fatal(err)
	}
	pkt, ok := nics[1].Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	if pkt.From != 0 || pkt.Hdr != hdr {
		t.Fatalf("header roundtrip: got From=%d %+v", pkt.From, pkt.Hdr)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestTCPGatherSendFromIov(t *testing.T) {
	nics := dialMesh(t, 2, Config{})
	src, all := makeIov(t, 7, 1000, 13)
	if n, err := nics[0].SendFrom(1, Header{Total: src.Size()}, src, 0, src.Size()); err != nil || n != src.Size() {
		t.Fatalf("SendFrom = %d, %v", n, err)
	}
	pkt, _ := nics[1].Recv()
	if !bytes.Equal(pkt.Payload, all) {
		t.Fatal("iov gather over TCP mismatch")
	}
}

func TestTCPSendFromGeneric(t *testing.T) {
	nics := dialMesh(t, 2, Config{})
	data := make([]byte, 900)
	fillPattern(data, 6)
	src := nonDirectSource{Bytes(data)}
	if n, err := nics[0].SendFrom(1, Header{}, src, 100, 700); err != nil || n != 700 {
		t.Fatalf("SendFrom = %d, %v", n, err)
	}
	pkt, _ := nics[1].Recv()
	if !bytes.Equal(pkt.Payload, data[100:800]) {
		t.Fatal("generic SendFrom over TCP mismatch")
	}
}

func TestTCPRegisterGet(t *testing.T) {
	nics := dialMesh(t, 2, Config{FragSize: 1024})
	data := make([]byte, 10000)
	fillPattern(data, 8)
	key := nics[0].Register(Bytes(data))
	out := make([]byte, 10000)
	if err := nics[1].Get(0, key, 0, Bytes(out), 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("TCP Get mismatch")
	}
	// Offset get into a shifted sink position.
	out2 := make([]byte, 600)
	if err := nics[1].Get(0, key, 500, Bytes(out2), 100, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2[100:], data[500:1000]) {
		t.Fatal("offset TCP Get mismatch")
	}
	if err := nics[1].Get(0, key+100, 0, Bytes(out2), 0, 1); err == nil {
		t.Fatal("Get with bad key should fail")
	}
}

func TestTCPThreeRankMesh(t *testing.T) {
	nics := dialMesh(t, 3, Config{})
	// Every rank sends to every other rank.
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			hdr := Header{Tag: uint64(src*10 + dst)}
			if err := nics[src].Send(dst, hdr, []byte{byte(src)}); err != nil {
				t.Fatalf("send %d->%d: %v", src, dst, err)
			}
		}
	}
	for dst := 0; dst < 3; dst++ {
		got := map[uint64]bool{}
		for i := 0; i < 2; i++ {
			pkt, ok := nics[dst].Recv()
			if !ok {
				t.Fatal("early close")
			}
			if int(pkt.Payload[0]) != pkt.From {
				t.Fatal("payload/source mismatch")
			}
			got[pkt.Hdr.Tag] = true
		}
		if len(got) != 2 {
			t.Fatalf("rank %d received %d distinct messages", dst, len(got))
		}
	}
}

func TestTCPSelfSendRejected(t *testing.T) {
	nics := dialMesh(t, 2, Config{})
	if err := nics[0].Send(0, Header{}); err == nil {
		t.Fatal("self-send over TCP should be rejected")
	}
}

func TestTCPMeshIncompleteNamesMissingPeer(t *testing.T) {
	addrs := freeAddrs(t, 2)
	// Rank 1 never comes up, so rank 0's accept-side mesh stays incomplete.
	_, err := NewTCP(0, addrs, Config{EagerMesh: true, DialTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("mesh with absent peer should fail")
	}
	if !strings.Contains(err.Error(), "missing peer(s) [1]") {
		t.Fatalf("error does not name the missing peer: %v", err)
	}
}

// lazyMesh brings up an n-rank TCP fabric with lazy dialing (the default)
// using the ListenTCP/Addr/Join bootstrap flow: every rank binds an
// ephemeral port and the bound addresses are exchanged afterwards,
// exactly like the launcher's rendezvous.
func lazyMesh(t *testing.T, n int, cfg Config) []*TCP {
	t.Helper()
	nics := make([]*TCP, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		nic, err := ListenTCP(i, n, "127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		nics[i] = nic
		addrs[i] = nic.Addr()
	}
	for _, nic := range nics {
		if err := nic.Join(addrs); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nic := range nics {
			nic.Close()
		}
	})
	return nics
}

func TestTCPLazyDialOnFirstSend(t *testing.T) {
	nics := lazyMesh(t, 4, Config{})
	// Nothing has been sent: no rank holds any connection.
	for i, nic := range nics {
		if n := nic.NumConns(); n != 0 {
			t.Fatalf("rank %d holds %d connections before any traffic", i, n)
		}
	}
	// One exchange between ranks 0 and 3 brings up exactly that link.
	if err := nics[0].Send(3, Header{Tag: 7}, []byte{42}); err != nil {
		t.Fatal(err)
	}
	pkt, ok := nics[3].Recv()
	if !ok || pkt.From != 0 || pkt.Payload[0] != 42 {
		t.Fatalf("lazy-dial delivery: ok=%v pkt=%+v", ok, pkt)
	}
	if n := nics[0].NumConns(); n != 1 {
		t.Fatalf("rank 0 holds %d connections, want 1", n)
	}
	if n := nics[1].NumConns(); n != 0 {
		t.Fatalf("idle rank 1 holds %d connections", n)
	}
	// The reverse direction shares the same connection instead of dialing
	// a second one.
	if err := nics[3].Send(0, Header{Tag: 8}, []byte{43}); err != nil {
		t.Fatal(err)
	}
	if pkt, ok := nics[0].Recv(); !ok || pkt.From != 3 || pkt.Payload[0] != 43 {
		t.Fatal("reverse delivery over shared connection failed")
	}
	if n := nics[3].NumConns(); n != 1 {
		t.Fatalf("rank 3 holds %d connections after reuse, want 1", n)
	}
}

// TestTCPLazySimultaneousDial drives both sides into dialing each other
// at once; the tie-break must collapse the pair to a usable link (in
// either direction) rather than deadlock or cross-install.
func TestTCPLazySimultaneousDial(t *testing.T) {
	for round := 0; round < 10; round++ {
		nics := lazyMesh(t, 2, Config{})
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = nics[i].Send(1-i, Header{Tag: uint64(i)}, []byte{byte(i)})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d: rank %d send: %v", round, i, err)
			}
		}
		for i := 0; i < 2; i++ {
			pkt, ok := nics[i].Recv()
			if !ok || pkt.From != 1-i {
				t.Fatalf("round %d: rank %d recv: ok=%v from=%d", round, i, ok, pkt.From)
			}
		}
		nics[0].Close()
		nics[1].Close()
	}
}

// TestTCPUnreachablePeerNamesAddress asserts the lazy path fails with an
// error naming the peer rank and its advertised address — not a hang —
// when that address is dead.
func TestTCPUnreachablePeerNamesAddress(t *testing.T) {
	dead := freeAddrs(t, 1)[0] // reserved then released: nothing listens here
	nic, err := ListenTCP(0, 2, "127.0.0.1:0", Config{DialTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nic.Close()
	if err := nic.Join([]string{nic.Addr(), dead}); err != nil {
		t.Fatal(err)
	}
	err = nic.Send(1, Header{}, []byte{1})
	if err == nil {
		t.Fatal("send to unreachable peer should fail")
	}
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("want ErrLinkDown, got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "rank 1") || !strings.Contains(msg, dead) {
		t.Fatalf("error does not name peer rank and address: %v", err)
	}
}

func TestTCPRedialAfterDisconnect(t *testing.T) {
	nics := dialMesh(t, 2, Config{})
	if err := nics[0].Send(1, Header{Tag: 1}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if pkt, ok := nics[1].Recv(); !ok || pkt.Payload[0] != 1 {
		t.Fatal("pre-break send failed")
	}
	// Sever the socket out from under both sides. Rank 1 dialed rank 0,
	// so rank 1 redials and rank 0's accept loop re-installs.
	nics[1].connsMu.RLock()
	conn := nics[1].conns[0]
	nics[1].connsMu.RUnlock()
	conn.c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := nics[1].Send(0, Header{Tag: 2}, []byte{2})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrLinkDown) {
			t.Fatalf("send during redial: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("link did not come back within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pkt, ok := nics[0].Recv(); !ok || pkt.Payload[0] != 2 {
		t.Fatal("post-redial send failed")
	}
	// The reverse direction works over the replacement connection too.
	if err := nics[0].Send(1, Header{Tag: 3}, []byte{3}); err != nil {
		t.Fatalf("reverse send after redial: %v", err)
	}
	if pkt, ok := nics[1].Recv(); !ok || pkt.Payload[0] != 3 {
		t.Fatal("reverse delivery after redial failed")
	}
}

func TestTCPGetChecksum(t *testing.T) {
	nics := dialMesh(t, 2, Config{FragSize: 1024, Checksum: true})
	data := make([]byte, 10000)
	fillPattern(data, 9)
	key := nics[0].Register(Bytes(data))
	out := make([]byte, len(data))
	if err := nics[1].Get(0, key, 0, Bytes(out), 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("checksummed TCP Get mismatch")
	}
}
