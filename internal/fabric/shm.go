package fabric

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SHM provider control frames, carried over the unix-socket plane and
// consumed by the stream core's ctrl hook (never delivered to Recv).
const (
	// kindRingOpen announces an eager ring the sender created for this
	// pair; Aux0 carries the segment size in bytes, Aux1 the producer's
	// handshake generation (echoed by the ack, so an ack for a ring that
	// was since torn down cannot flip a newer handshake onto a segment
	// the receiver no longer polls).
	kindRingOpen Kind = 0xFB
	// kindRingAck confirms the receiver mapped the ring; Aux1 echoes the
	// open's generation.
	kindRingAck Kind = 0xFC
	// kindWinData announces a chunk placed in the shared pull window:
	// Tag is the window-global chunk sequence, Offset the data offset
	// within the Get, Aux0 the window byte offset, Aux1 the chunk length.
	kindWinData Kind = 0xFD
	// kindWinAck confirms the requester copied a chunk out of the window
	// (Tag echoes the chunk sequence).
	kindWinAck Kind = 0xFE
	// kindRingSwitch is the ordered handoff marker: it is the last frame
	// of this pair's eager class to travel over the socket, so the
	// receiver starts polling the ring only after every earlier socket
	// frame was delivered.
	kindRingSwitch Kind = 0xFF
)

// flagGetWindow marks a Get request to be served through the shared pull
// window instead of socket response frames; Aux0 carries the window size.
const flagGetWindow uint8 = 1 << 1

// DefaultRingBytes is the default per-direction eager ring capacity.
const DefaultRingBytes = 256 << 10

// DefaultWinBytes is the default shared pull-window size (two halves,
// double-buffered).
const DefaultWinBytes = 512 << 10

// defaultWinThresh is the Get size at and above which the SHM provider
// pulls through the shared window instead of socket response frames.
const defaultWinThresh = 64 << 10

// SHM is a fabric provider for ranks that are separate processes on one
// node. Eager traffic crosses mmap'd single-producer/single-consumer
// rings (one per pair and direction, created on first use); large
// rendezvous pulls cross a shared double-buffered window so the exporter
// packs straight into memory the requester reads, one copy per side. A
// unix-domain socket mesh — the same lazily-dialed stream core the TCP
// provider uses — carries bootstrap, control, rendezvous requests, and
// spill traffic (fragmented messages, and everything sent before a pair's
// ring is up).
//
// Channel ordering: within the eager class a pair's traffic moves over
// exactly one channel at a time — the socket until the ring handshake
// completes, the ring after the kindRingSwitch marker — so eager frames
// never overtake each other. Fragmented messages always use the socket,
// keeping a message's fragments mutually ordered.
type SHM struct {
	*stream
	dir       string
	ringBytes int
	winBytes  int
	winThresh int

	outMu sync.Mutex
	outs  map[int]*shmOut

	inMu sync.Mutex
	ins  []*shmIn

	winOutMu sync.Mutex
	winOuts  map[int]*shmWin // per-requester serve windows (exporter side)

	winInMu sync.Mutex
	winIns  map[int]*shmWin // per-exporter pull windows (requester side)

	filesMu sync.Mutex
	files   []string // segments this endpoint created, removed on Close

	// downFlags marks peers with hard death evidence (refused redial
	// after an established connection): ring producers and window serves
	// toward such a peer bail out instead of waiting on a consumer that
	// no longer exists. Cleared by ReviveRank.
	downFlags []atomic.Bool
	// userDown is the externally installed peer-down hook; the provider
	// interposes its own on the stream core to maintain downFlags.
	userMu   sync.Mutex
	userDown func(peer int, hard bool)

	// graveyard holds mappings retired by revival. They cannot be
	// unmapped while the poller or a window serve might still hold a
	// reference from a racing snapshot, so they are parked here and
	// unmapped at Close. Bounded by the number of revivals.
	gravMu    sync.Mutex
	graveyard [][]byte

	// ringGen numbers ring handshakes; each shmOut carries the generation
	// it was created under, and ring acks must echo it to take effect.
	ringGen atomic.Int64

	pollDone chan struct{}
	pollWG   sync.WaitGroup
	shmOnce  sync.Once

	ringSends  atomic.Int64 // eager frames that crossed a ring
	ringSpills atomic.Int64 // ring-eligible frames that used the socket
	winPulls   atomic.Int64 // Gets served through the shared window
}

// shmOut is the producer side of one outbound eager ring. mu serializes
// the pair's whole eager class — ring production AND pre-ring socket
// spills — so the kindRingSwitch marker (sent under mu by the first
// sender that observes the ack) cleanly splits the class into
// before-switch socket frames and after-switch ring frames. ackd is
// written by the control goroutine without taking mu, so a sender
// blocked mid-dial cannot stall the handshake.
type shmOut struct {
	mu    sync.Mutex
	gen   int64       // handshake generation; ring acks must echo it
	ring  *Ring
	mem   []byte
	ackd  atomic.Bool // kindRingAck received
	down  atomic.Bool // peer declared gone; ring producers must bail
	ready bool        // switch marker sent; senders use the ring
}

// shmIn is one inbound eager ring the poller drains. It stays pending —
// mapped but not polled — until the peer's switch marker arrives, which
// orders ring traffic after all earlier socket traffic.
type shmIn struct {
	peer    int
	ring    *Ring
	mem     []byte
	pending atomic.Bool
}

// shmWin is one side of a shared pull window: two halves, alternated by
// the window-global chunk sequence. The exporter side holds mu for a
// whole Get (serializing pulls per requester) and tracks the highest
// acked chunk; the requester side only reads chunks it was told about.
type shmWin struct {
	mu      sync.Mutex
	mem     []byte
	chunk   uint64 // next chunk sequence to write (exporter side)
	lastAck int64  // highest acked chunk sequence, -1 before any
	ack     chan uint64
}

// ShmSocket returns the unix-socket path rank binds inside dir. Exported
// so the launcher can pre-compute and clean session directories.
func ShmSocket(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("sock.%d", rank))
}

func shmRingPath(dir string, from, to int) string {
	return filepath.Join(dir, fmt.Sprintf("ring-%d-to-%d", from, to))
}

func shmWinPath(dir string, owner, requester int) string {
	return filepath.Join(dir, fmt.Sprintf("win-%d-to-%d", owner, requester))
}

// NewSHM attaches rank to a shared-memory fabric rooted at dir, a
// directory on a tmpfs (or any local filesystem) every rank of the job
// can reach. Keep dir short: unix socket paths are limited to ~100 bytes.
// All segment and socket names inside dir are deterministic functions of
// rank pairs, so no address exchange is needed beyond agreeing on dir.
func NewSHM(rank, size int, dir string, cfg Config) (*SHM, error) {
	if err := mapProbe(); err != nil {
		return nil, err
	}
	sock := ShmSocket(dir, rank)
	_ = os.Remove(sock) // a stale socket from a crashed prior run blocks listen
	st, err := newStream("unix", rank, size, sock, cfg)
	if err != nil {
		return nil, err
	}
	s := &SHM{
		stream:    st,
		dir:       dir,
		ringBytes: cfg.RingBytes,
		winBytes:  cfg.WinBytes,
		winThresh: defaultWinThresh,
		outs:      make(map[int]*shmOut),
		winOuts:   make(map[int]*shmWin),
		winIns:    make(map[int]*shmWin),
		downFlags: make([]atomic.Bool, size),
		pollDone:  make(chan struct{}),
	}
	if s.ringBytes <= 0 {
		s.ringBytes = DefaultRingBytes
	}
	if s.winBytes < 16<<10 {
		s.winBytes = DefaultWinBytes
	}
	s.winBytes &^= 15 // two 8-aligned halves
	st.ctrl = s.handleCtrl
	st.onGetReq = s.handleGetReq
	// Interpose on the stream core's link evidence so hard death marks
	// the pair's shared-memory channels as stalled (ring producers and
	// window serves bail instead of spinning on a dead consumer), then
	// forward to whatever hook the layer above installs.
	st.SetPeerDownHook(s.linkEvent)
	// Re-key shared-memory establishment to the socket generation: when
	// the control conn to a peer breaks (a respawned rank's revival on
	// either side closes and re-dials it), the pair's rings and pull
	// windows are torn down so the next send restarts the handshake over
	// the fresh socket. Without this, a producer whose consumer forgot
	// the ring keeps writing into a segment nobody polls.
	st.onConnDrop = s.connDropped
	addrs := make([]string, size)
	for i := range addrs {
		addrs[i] = ShmSocket(dir, i)
	}
	if err := st.join(addrs); err != nil {
		st.Close()
		return nil, err
	}
	if reg := cfg.Obs; reg != nil {
		p := func(name string) string { return fmt.Sprintf("fabric.r%d.%s", rank, name) }
		reg.GaugeFunc(p("shm_ring_sends"), s.ringSends.Load)
		reg.GaugeFunc(p("shm_ring_spills"), s.ringSpills.Load)
		reg.GaugeFunc(p("shm_win_pulls"), s.winPulls.Load)
	}
	s.pollWG.Add(1)
	go s.pollLoop()
	return s, nil
}

// mapProbe reports whether the platform supports the provider (mmap
// available) without touching the filesystem.
func mapProbe() error {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		return errors.New("fabric: SHM provider requires linux or darwin (mmap)")
	}
	return nil
}

// linkEvent is the provider's internal peer-down hook on the socket
// plane. Hard evidence (refused redial after a prior connection: the
// peer's process is gone) stalls the pair's shared-memory channels;
// both hard and soft events are forwarded to the externally installed
// hook (the liveness detector).
func (s *SHM) linkEvent(peer int, hard bool) {
	if hard {
		s.DeclareRankDown(peer)
	}
	s.userMu.Lock()
	fn := s.userDown
	s.userMu.Unlock()
	if fn != nil {
		fn(peer, hard)
	}
}

// DeclareRankDown records out-of-band death evidence for a peer (the
// transport layer's failure verdict, which may arrive from pure silence
// before the socket plane sees anything): the pair's shared-memory
// channels stall out with ErrLinkDown instead of waiting on a consumer
// that will never drain.
func (s *SHM) DeclareRankDown(peer int) {
	if peer < 0 || peer >= len(s.downFlags) {
		return
	}
	s.downFlags[peer].Store(true)
	s.outMu.Lock()
	o := s.outs[peer]
	s.outMu.Unlock()
	if o != nil {
		o.down.Store(true)
	}
}

// SetPeerDownHook installs the external link-evidence callback (the
// stream core's hook slot is occupied by the provider's interposer).
func (s *SHM) SetPeerDownHook(fn func(peer int, hard bool)) {
	s.userMu.Lock()
	s.userDown = fn
	s.userMu.Unlock()
}

// bury parks a retired mapping for unmapping at Close.
func (s *SHM) bury(mem []byte) {
	if mem == nil {
		return
	}
	s.gravMu.Lock()
	s.graveyard = append(s.graveyard, mem)
	s.gravMu.Unlock()
}

// ReviveRank forgets all shared-memory state toward a peer so a
// respawned process can be re-admitted under the same rank: the
// outbound ring (its consumer died with the old incarnation) is torn
// down so the next send restarts the handshake against the replacement,
// inbound rings and pull windows of the dead incarnation are retired,
// and the down flags clear. Socket-plane state resets via the embedded
// stream core.
func (s *SHM) ReviveRank(peer int) {
	if peer < 0 || peer >= s.size || peer == s.rank {
		return
	}
	// Stall any producer first (a sender parked on the dead consumer's
	// full ring holds the pair lock until it observes down).
	s.outMu.Lock()
	o := s.outs[peer]
	delete(s.outs, peer)
	s.outMu.Unlock()
	if o != nil {
		o.down.Store(true)
		o.mu.Lock()
		if o.ring != nil {
			o.ring.Close()
			s.bury(o.mem)
			o.ring, o.mem = nil, nil
		}
		o.ready = false
		o.mu.Unlock()
	}
	s.inMu.Lock()
	kept := s.ins[:0]
	for _, in := range s.ins {
		if in.peer == peer {
			in.pending.Store(true) // poller skips it even from a racing snapshot
			s.bury(in.mem)
		} else {
			kept = append(kept, in)
		}
	}
	s.ins = kept
	s.inMu.Unlock()
	s.winInMu.Lock()
	if w := s.winIns[peer]; w != nil {
		s.bury(w.mem)
		delete(s.winIns, peer)
	}
	s.winInMu.Unlock()
	s.winOutMu.Lock()
	if w := s.winOuts[peer]; w != nil {
		s.bury(w.mem)
		delete(s.winOuts, peer)
	}
	s.winOutMu.Unlock()
	s.downFlags[peer].Store(false)
	s.stream.ReviveRank(peer)
}

// connDropped is the stream core's conn-drop hook: the socket to peer
// broke, so every piece of shared-memory establishment keyed to it is
// torn down and rebuilt on next use. This is what keeps elastic revival
// coherent when the two sides act out of step — a survivor that Revives
// a respawned rank buries its inbound rings, and without this hook the
// respawned side (whose handshake completed before the revival) would
// keep producing into segments nobody polls. Death evidence is NOT
// touched: downFlags belong to DeclareRankDown/ReviveRank.
//
// Inbound rings are left alone: the producer side observes the same
// socket break, resets here too, and its fresh kindRingOpen replaces
// them (acceptRing retires duplicates). Frames stranded in torn-down
// rings are recovered by the reliable protocol's retransmission.
func (s *SHM) connDropped(peer int) {
	if peer < 0 || peer >= s.size || peer == s.rank {
		return
	}
	s.outMu.Lock()
	o := s.outs[peer]
	delete(s.outs, peer)
	s.outMu.Unlock()
	if o != nil {
		// Unblock a producer parked on the ring before taking the pair
		// lock it holds; its send fails with ErrLinkDown, which is what
		// the broken socket would have produced anyway.
		o.down.Store(true)
		o.mu.Lock()
		if o.ring != nil {
			o.ring.Close()
			s.bury(o.mem)
			o.ring, o.mem = nil, nil
		}
		o.ready = false
		o.mu.Unlock()
	}
	s.winInMu.Lock()
	if w := s.winIns[peer]; w != nil {
		s.bury(w.mem)
		delete(s.winIns, peer)
	}
	s.winInMu.Unlock()
	s.winOutMu.Lock()
	if w := s.winOuts[peer]; w != nil {
		s.bury(w.mem)
		delete(s.winOuts, peer)
	}
	s.winOutMu.Unlock()
}

func (s *SHM) trackFile(path string) {
	s.filesMu.Lock()
	s.files = append(s.files, path)
	s.filesMu.Unlock()
}

// ringEligible reports whether a frame may cross the eager ring: it must
// be self-contained (its payload is the whole message, so no cross-frame
// ordering constraints exist outside the eager class) and small enough
// that a few frames fit the ring at once. Control kinds always use the
// socket.
func (s *SHM) ringEligible(hdr Header, n int) bool {
	return hdr.Kind < kindProviderCtrlMin &&
		hdr.Offset == 0 && int64(n) == hdr.Total &&
		recordSpan(headerWireSize+n) <= uint64(ringCapFor(s.ringBytes))/4
}

// ensureOut returns the pair's eager-class state, starting the ring
// handshake on first use.
func (s *SHM) ensureOut(to int) *shmOut {
	s.outMu.Lock()
	o := s.outs[to]
	if o == nil {
		o = &shmOut{gen: s.ringGen.Add(1)}
		s.outs[to] = o
		s.outMu.Unlock()
		go s.openRing(to, o)
		return o
	}
	s.outMu.Unlock()
	return o
}

// switchLocked flips the pair onto the ring once the receiver's ack is
// in, emitting the ordered handoff marker. Caller holds o.mu.
func (s *SHM) switchLocked(to int, o *shmOut) {
	if !o.ready && o.ring != nil && o.ackd.Load() {
		if s.stream.Send(to, Header{Kind: kindRingSwitch}) == nil {
			o.ready = true
		}
	}
}

// openRing creates and exports the eager ring toward a peer. Failures
// leave the pair on the socket path permanently — correct, just slower.
func (s *SHM) openRing(to int, o *shmOut) {
	path := shmRingPath(s.dir, s.rank, to)
	total := RingHeaderSize + int(ringCapFor(s.ringBytes))
	// Unlink any segment left by a previous incarnation of this rank
	// before creating: survivors of that incarnation may still hold the
	// old file mapped, and reusing its pages would splice this ring into
	// their stale mappings.
	_ = os.Remove(path)
	mem, err := mapFile(path, total, true)
	if err != nil {
		return
	}
	ring, err := AttachRing(mem, true)
	if err != nil {
		_ = unmapFile(mem)
		return
	}
	s.trackFile(path)
	o.mu.Lock()
	o.mem, o.ring = mem, ring
	o.mu.Unlock()
	// The ack handler completes the handshake (sends the switch marker
	// and flips ready).
	_ = s.stream.Send(to, Header{Kind: kindRingOpen, Aux0: int64(total), Aux1: o.gen})
}

// Send places self-contained frames on the pair's eager ring (blocking
// on a full ring, the shared-memory analogue of socket backpressure) and
// everything else on the socket. Pre-switch spills run under the same
// per-pair lock as ring production, so the eager class stays ordered
// across the handoff.
func (s *SHM) Send(to int, hdr Header, payload ...[]byte) error {
	n := 0
	for _, p := range payload {
		n += len(p)
	}
	if to == s.rank || to < 0 || to >= s.size || !s.ringEligible(hdr, n) {
		return s.stream.Send(to, hdr, payload...)
	}
	o := s.ensureOut(to)
	o.mu.Lock()
	defer o.mu.Unlock()
	s.switchLocked(to, o)
	if !o.ready {
		s.ringSpills.Add(1)
		return s.stream.Send(to, hdr, payload...)
	}
	buf, err := s.reserveBlocking(o, to, headerWireSize+n)
	if err != nil {
		return err
	}
	var hb [headerWireSize]byte
	encodeHeader(&hb, hdr)
	at := copy(buf, hb[:])
	for _, p := range payload {
		at += copy(buf[at:], p)
	}
	o.ring.Commit(at)
	spin(s.cfg.PerPacket)
	s.ringSends.Add(1)
	return nil
}

// SendFrom packs straight from the source into ring memory — the
// zero-staging path where a datatype pack callback writes into the
// consumer-visible segment.
func (s *SHM) SendFrom(to int, hdr Header, src Source, off, size int64) (int64, error) {
	if to == s.rank || to < 0 || to >= s.size || size > MaxFragSize || !s.ringEligible(hdr, int(size)) {
		return s.stream.SendFrom(to, hdr, src, off, size)
	}
	o := s.ensureOut(to)
	o.mu.Lock()
	defer o.mu.Unlock()
	s.switchLocked(to, o)
	if !o.ready {
		s.ringSpills.Add(1)
		return s.stream.SendFrom(to, hdr, src, off, size)
	}
	buf, err := s.reserveBlocking(o, to, headerWireSize+int(size))
	if err != nil {
		return 0, err
	}
	var hb [headerWireSize]byte
	encodeHeader(&hb, hdr)
	copy(buf, hb[:])
	got, rerr := src.ReadAt(buf[headerWireSize:headerWireSize+int(size)], off)
	if rerr != nil && rerr != io.EOF {
		o.ring.Abort()
		return 0, rerr
	}
	if got == 0 && size > 0 {
		o.ring.Abort()
		return 0, ErrShortTransfer
	}
	o.ring.Commit(headerWireSize + got)
	spin(s.cfg.PerPacket)
	s.ringSends.Add(1)
	return int64(got), nil
}

// reserveBlocking reserves ring space, waiting for the consumer when the
// ring is full. Caller holds o.mu (so waiting senders queue in order).
// A ring whose consumer process died would stay full forever; the down
// flags (fed by socket-plane death evidence) break that stall with
// ErrLinkDown so the transport's failure machinery takes over.
func (s *SHM) reserveBlocking(o *shmOut, to, n int) ([]byte, error) {
	for i := 0; ; i++ {
		if o.down.Load() || s.downFlags[to].Load() {
			return nil, fmt.Errorf("%w: rank %d exited; eager ring stalled", ErrLinkDown, to)
		}
		if buf, ok := o.ring.Reserve(n); ok {
			return buf, nil
		}
		select {
		case <-s.done:
			return nil, ErrClosed
		default:
		}
		switch {
		case i < 256:
			runtime.Gosched()
		case i < 4096:
			time.Sleep(20 * time.Microsecond)
		default:
			// A ring stays full only while its consumer is descheduled;
			// on an oversubscribed box that can last a while — back off
			// instead of stealing the consumer's CPU.
			time.Sleep(time.Millisecond)
		}
	}
}

// Get pulls large transfers through the shared window (exporter packs
// into one half while the requester drains the other) and small ones
// through socket response frames.
func (s *SHM) Get(from int, key uint64, off int64, sink Sink, sinkOff, size int64) error {
	if from != s.rank && size >= int64(s.winThresh) {
		if win := s.pullWindow(from); win != nil {
			s.winPulls.Add(1)
			return s.getVia(from, key, off, sink, sinkOff, size, flagGetWindow, int64(len(win.mem)))
		}
	}
	return s.stream.Get(from, key, off, sink, sinkOff, size)
}

// pullWindow returns (creating on first use) the window this rank pulls
// exporter `from`'s data through. nil falls back to socket pulls.
func (s *SHM) pullWindow(from int) *shmWin {
	s.winInMu.Lock()
	defer s.winInMu.Unlock()
	if w := s.winIns[from]; w != nil {
		return w
	}
	path := shmWinPath(s.dir, from, s.rank)
	_ = os.Remove(path) // see openRing: never reuse a previous incarnation's pages
	mem, err := mapFile(path, s.winBytes, true)
	if err != nil {
		return nil
	}
	s.trackFile(path)
	w := &shmWin{mem: mem, lastAck: -1}
	s.winIns[from] = w
	return w
}

// serveWindow returns (mapping on first use) the window this rank serves
// pulls to `requester` through. The requester created the segment before
// sending its first window-flagged request.
func (s *SHM) serveWindow(requester, size int) *shmWin {
	s.winOutMu.Lock()
	defer s.winOutMu.Unlock()
	if w := s.winOuts[requester]; w != nil {
		return w
	}
	mem, err := mapFile(shmWinPath(s.dir, s.rank, requester), size, false)
	if err != nil {
		return nil
	}
	w := &shmWin{mem: mem, lastAck: -1, ack: make(chan uint64, 64)}
	s.winOuts[requester] = w
	return w
}

// handleGetReq claims window-flagged Get requests off the socket read
// loop; plain requests fall through to the stream's socket server.
func (s *SHM) handleGetReq(conn *streamConn, hdr Header) bool {
	if hdr.Flags&flagGetWindow == 0 {
		return false
	}
	go s.serveWindowGet(conn.peer, hdr)
	return true
}

// serveWindowGet is the exporter side of a windowed pull: it packs the
// registered source into alternating window halves, announcing each
// chunk over the socket and recycling a half only after the requester
// acked copying it out (classic double buffering — chunk i waits on the
// ack of chunk i-2).
func (s *SHM) serveWindowGet(peer int, hdr Header) {
	fail := func(msg string) {
		_ = s.stream.Send(peer, Header{Kind: kindGetErr, MsgID: hdr.MsgID}, []byte(msg))
	}
	src, ok := s.lookupReg(uint64(hdr.Aux1))
	if !ok {
		fail(ErrBadKey.Error())
		return
	}
	w := s.serveWindow(peer, int(hdr.Aux0))
	if w == nil {
		fail("pull window unavailable")
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	half := len(w.mem) / 2
	off, left := hdr.Offset, hdr.Total
	sent := 0
	for left > 0 {
		c := w.chunk
		if sent >= 2 && !s.awaitWinAck(w, c-2, peer) {
			fail("pull window ack timeout")
			return
		}
		base := int(c%2) * half
		step := int64(half)
		if step > left {
			step = left
		}
		n, err := src.ReadAt(w.mem[base:base+int(step)], off)
		if err != nil && err != io.EOF {
			fail(err.Error())
			return
		}
		if n == 0 {
			fail(ErrShortTransfer.Error())
			return
		}
		spin(s.cfg.PerGet)
		ann := Header{Kind: kindWinData, Tag: c, MsgID: hdr.MsgID,
			Offset: off, Total: hdr.Total, Aux0: int64(base), Aux1: int64(n)}
		if s.stream.Send(peer, ann) != nil {
			return // link down; the requester's Get fails via failGets
		}
		w.chunk++
		sent++
		off += int64(n)
		left -= int64(n)
	}
	// Wait for the tail acks so the next Get may reuse both halves.
	if w.chunk > 0 && !s.awaitWinAck(w, w.chunk-1, peer) {
		fail("pull window ack timeout")
	}
}

// awaitWinAck waits until every chunk up to seq was acked. Acks arrive in
// socket order, so the sequence only moves forward. A requester whose
// process died mid-pull never acks — the wait bails as soon as the
// socket plane produces hard death evidence for the peer (a stale pull
// window), instead of burning the whole dial timeout.
func (s *SHM) awaitWinAck(w *shmWin, seq uint64, peer int) bool {
	deadline := time.Now().Add(s.cfg.DialTimeout)
	for w.lastAck < int64(seq) {
		select {
		case got := <-w.ack:
			if int64(got) > w.lastAck {
				w.lastAck = int64(got)
			}
		case <-s.done:
			return false
		case <-time.After(20 * time.Millisecond):
			if s.downFlags[peer].Load() || time.Now().After(deadline) {
				return false
			}
		}
	}
	return true
}

// handleCtrl runs on socket read goroutines and consumes the provider's
// control frames.
func (s *SHM) handleCtrl(conn *streamConn, hdr Header, payload []byte, putback func()) {
	putback() // control frames carry no payload worth keeping
	switch hdr.Kind {
	case kindRingOpen:
		go s.acceptRing(conn.peer, int(hdr.Aux0), hdr.Aux1)
	case kindRingAck:
		s.completeRing(conn.peer, hdr.Aux1)
	case kindRingSwitch:
		// Every socket frame the peer sent before switching is now in the
		// inbox; eager-class frames from this peer arrive via the ring
		// from here on.
		s.startPolling(conn.peer)
	case kindWinData:
		s.handleWinData(conn.peer, hdr)
	case kindWinAck:
		s.winOutMu.Lock()
		w := s.winOuts[conn.peer]
		s.winOutMu.Unlock()
		if w != nil {
			select {
			case w.ack <- hdr.Tag:
			default: // ≤2 chunks are ever unacked; a full channel means a dead serve
			}
		}
	}
}

// acceptRing maps a peer's freshly exported eager ring and acks it. The
// ring is not polled yet — that waits for the switch marker so no ring
// frame can overtake socket frames sent before the handshake finished.
func (s *SHM) acceptRing(peer, size int, gen int64) {
	mem, err := mapFile(shmRingPath(s.dir, peer, s.rank), size, false)
	if err != nil {
		return // no ack: the peer keeps using the socket
	}
	ring, err := AttachRing(mem, false)
	if err != nil {
		_ = unmapFile(mem)
		return
	}
	s.inMu.Lock()
	kept := s.ins[:0]
	for _, old := range s.ins {
		if old.peer == peer {
			// Duplicate open: the peer restarted its handshake — today
			// that means a respawned process re-admitted under the same
			// rank. The old incarnation's ring is dead weight; retire it
			// and install the fresh mapping.
			old.pending.Store(true)
			s.bury(old.mem)
		} else {
			kept = append(kept, old)
		}
	}
	s.ins = kept
	in := &shmIn{peer: peer, ring: ring, mem: mem}
	in.pending.Store(true)
	s.ins = append(s.ins, in)
	s.inMu.Unlock()
	_ = s.stream.Send(peer, Header{Kind: kindRingAck, Aux1: gen})
}

// completeRing records the receiver's ack. The next eligible send
// performs the actual switch (under the pair lock, so the marker lands
// between the last spilled frame and the first ring frame). The ack must
// echo the current handshake generation: a stale ack — for a ring that a
// conn drop has since torn down — must not flip the fresh handshake onto
// a segment the receiver is not polling.
func (s *SHM) completeRing(peer int, gen int64) {
	s.outMu.Lock()
	o := s.outs[peer]
	s.outMu.Unlock()
	if o != nil && o.gen == gen {
		o.ackd.Store(true)
	}
}

// startPolling moves a mapped inbound ring into the poller's active set.
func (s *SHM) startPolling(peer int) {
	s.inMu.Lock()
	for _, in := range s.ins {
		if in.peer == peer {
			in.pending.Store(false)
		}
	}
	s.inMu.Unlock()
}

// handleWinData copies one announced chunk out of the pull window into
// the Get's sink and acks the half back to the exporter. It runs on the
// socket read goroutine, so chunks from one exporter are handled in
// announcement order.
func (s *SHM) handleWinData(peer int, hdr Header) {
	g := s.lookupGet(hdr.MsgID)
	s.winInMu.Lock()
	win := s.winIns[peer]
	s.winInMu.Unlock()
	var copied int64
	if g != nil && win != nil {
		start, n := hdr.Aux0, hdr.Aux1
		if start >= 0 && n > 0 && start+n <= int64(len(win.mem)) {
			if _, err := g.sink.WriteAt(win.mem[start:start+n], g.sinkOff+hdr.Offset); err != nil {
				g.fail(err)
			} else {
				copied = n
			}
		} else {
			g.fail(fmt.Errorf("fabric: window chunk [%d,+%d) outside %d-byte window", start, n, len(win.mem)))
		}
	}
	// Ack unconditionally — even for an unknown MsgID (a Get that already
	// failed locally) the exporter must be able to recycle the half.
	_ = s.stream.Send(peer, Header{Kind: kindWinAck, Tag: hdr.Tag, MsgID: hdr.MsgID})
	if copied > 0 && atomic.AddInt64(&g.left, -copied) <= 0 {
		select {
		case g.done <- nil:
		default:
		}
	}
}

// pollLoop drains every active inbound ring into the inbox, with idle
// escalation from spinning to sleeping so quiet pairs cost ~nothing.
func (s *SHM) pollLoop() {
	defer s.pollWG.Done()
	idle := 0
	for {
		select {
		case <-s.pollDone:
			return
		default:
		}
		s.inMu.Lock()
		ins := append([]*shmIn(nil), s.ins...)
		s.inMu.Unlock()
		moved := 0
		for _, in := range ins {
			if in.pending.Load() {
				continue
			}
			for budget := 0; budget < 64; budget++ {
				rec, ok := in.ring.Next()
				if !ok {
					break
				}
				if len(rec) < headerWireSize {
					in.ring.Advance() // torn record: cannot happen via this provider; drop
					continue
				}
				hdr := decodeHeader(rec)
				var payload []byte
				var pbuf *[]byte
				if plen := len(rec) - headerWireSize; plen > 0 {
					pbuf = s.pool.get(plen)
					payload = (*pbuf)[:plen]
					copy(payload, rec[headerWireSize:])
				}
				in.ring.Advance()
				putback := func() {
					if pbuf != nil {
						s.pool.put(pbuf)
					}
				}
				pkt := &Packet{From: in.peer, Hdr: hdr, Payload: payload, release: putback}
				if !s.deliver(pkt) {
					putback()
					return
				}
				moved++
			}
		}
		if moved > 0 {
			idle = 0
			continue
		}
		idle++
		switch {
		case idle < 128:
			runtime.Gosched()
		case idle < 512:
			time.Sleep(50 * time.Microsecond)
		case idle < 2048:
			time.Sleep(500 * time.Microsecond)
		default:
			// Deep idle: a long sleep keeps oversubscribed jobs honest.
			// With a hundred-plus ranks per core, sub-millisecond polling
			// from every process starves the ranks doing real work.
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// DebugState renders a one-shot snapshot of the provider's channel
// state for post-mortem dumps: inbox depth, per-pair ring status, and
// the path counters. Pair locks are only tried — a pair whose lock is
// held (a sender parked on a full ring) reports "busy", which is itself
// the interesting datum.
func (s *SHM) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  shm: inbox=%d/%d ringSends=%d spills=%d winPulls=%d conns=%d\n",
		len(s.inbox), cap(s.inbox), s.ringSends.Load(), s.ringSpills.Load(), s.winPulls.Load(), s.NumConns())
	s.outMu.Lock()
	outs := make(map[int]*shmOut, len(s.outs))
	for to, o := range s.outs {
		outs[to] = o
	}
	s.outMu.Unlock()
	for to, o := range outs {
		if o.mu.TryLock() {
			fmt.Fprintf(&b, "  out->%d: ready=%v ackd=%v\n", to, o.ready, o.ackd.Load())
			o.mu.Unlock()
		} else {
			fmt.Fprintf(&b, "  out->%d: busy (sender holds pair lock; full ring?) ackd=%v\n", to, o.ackd.Load())
		}
	}
	s.inMu.Lock()
	ins := append([]*shmIn(nil), s.ins...)
	s.inMu.Unlock()
	for _, in := range ins {
		fmt.Fprintf(&b, "  in<-%d: pending=%v empty=%v\n", in.peer, in.pending.Load(), in.ring.Empty())
	}
	return b.String()
}

// Close tears the provider down: stop the socket plane (which unblocks
// the poller), wait the poller out, then unmap segments and remove the
// ones this endpoint created.
func (s *SHM) Close() error {
	s.shmOnce.Do(func() {
		close(s.pollDone)
		_ = s.stream.Close()
		s.pollWG.Wait()
		s.outMu.Lock()
		for _, o := range s.outs {
			o.mu.Lock()
			if o.ring != nil {
				o.ring.Close()
				_ = unmapFile(o.mem)
				o.ring, o.mem, o.ready = nil, nil, false
			}
			o.mu.Unlock()
		}
		s.outMu.Unlock()
		s.inMu.Lock()
		ins := s.ins
		s.ins = nil
		s.inMu.Unlock()
		for _, in := range ins {
			_ = unmapFile(in.mem)
		}
		s.winInMu.Lock()
		for _, w := range s.winIns {
			_ = unmapFile(w.mem)
		}
		s.winIns = map[int]*shmWin{}
		s.winInMu.Unlock()
		s.winOutMu.Lock()
		for _, w := range s.winOuts {
			_ = unmapFile(w.mem)
		}
		s.winOuts = map[int]*shmWin{}
		s.winOutMu.Unlock()
		s.gravMu.Lock()
		for _, mem := range s.graveyard {
			_ = unmapFile(mem)
		}
		s.graveyard = nil
		s.gravMu.Unlock()
		s.filesMu.Lock()
		for _, f := range s.files {
			_ = os.Remove(f)
		}
		s.files = nil
		s.filesMu.Unlock()
	})
	return nil
}
