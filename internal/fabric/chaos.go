package fabric

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// This file implements the chaos side of the soak harness: a seeded
// schedule of fault events (corruption bursts, link flaps, rank kills)
// spread across a wall-clock budget, and a runner that injects them
// into a live fault-wrapped world while traffic is flowing. The same
// plan and seed always produce the same schedule, so a soak failure
// reproduces from its logged seed alone.

// ChaosEventKind identifies one kind of scheduled chaos event.
type ChaosEventKind int

const (
	// ChaosCorruptBurst injects a bounded burst of payload corruption on
	// one rank's outbound traffic (any peer). The transport's checksums
	// and retransmission must absorb it.
	ChaosCorruptBurst ChaosEventKind = iota
	// ChaosLinkFlap takes one directed link down for a bounded number of
	// sends, then the runner restores it — a cable pull, not a death.
	ChaosLinkFlap
	// ChaosKill permanently kills a rank via its shared KillSwitch. The
	// application layer is expected to detect it (heartbeats), revoke,
	// agree, shrink, and resume.
	ChaosKill
)

func (k ChaosEventKind) String() string {
	switch k {
	case ChaosCorruptBurst:
		return "corrupt-burst"
	case ChaosLinkFlap:
		return "link-flap"
	case ChaosKill:
		return "kill"
	}
	return fmt.Sprintf("ChaosEventKind(%d)", int(k))
}

// ChaosEvent is one scheduled fault.
type ChaosEvent struct {
	At    time.Duration  // offset from runner start
	Kind  ChaosEventKind // what happens
	Rank  int            // rank whose NIC the event applies to
	Peer  int            // directed peer for link flaps (-1 = any, corrupt bursts)
	Count int            // burst size: corrupted packets or down-sends
	Prob  float64        // per-packet firing probability for injected rules
	Hold  time.Duration  // link flaps: how long before the runner restores the link
}

// ChaosPlan parameterises schedule generation. Zero values get sane
// defaults from BuildChaosSchedule; only Ranks and Budget are required.
type ChaosPlan struct {
	Seed   int64         // RNG seed; the whole schedule derives from it
	Budget time.Duration // events are spread across [5%, 95%] of this window
	Ranks  int           // world size

	// Protect lists ranks that are never killed (typically rank 0: the
	// root of rooted collectives and the soak's reporting rank). They
	// still receive corruption and link flaps.
	Protect []int

	// Kills is the number of rank-kill events (distinct victims). It is
	// clamped so at least two unprotected ranks survive — a world shrunk
	// below two ranks has nothing left to prove.
	Kills int

	CorruptBursts int // number of corruption-burst events (default Ranks)
	LinkFlaps     int // number of link-flap events (default Ranks)
}

// BuildChaosSchedule expands a plan into a deterministic, time-sorted
// event list. Same plan => same schedule, byte for byte.
func BuildChaosSchedule(p ChaosPlan) []ChaosEvent {
	if p.Ranks <= 0 || p.Budget <= 0 {
		return nil
	}
	if p.CorruptBursts == 0 {
		p.CorruptBursts = p.Ranks
	}
	if p.LinkFlaps == 0 {
		p.LinkFlaps = p.Ranks
	}
	protected := make(map[int]bool, len(p.Protect))
	for _, r := range p.Protect {
		protected[r] = true
	}
	var killable []int
	for r := 0; r < p.Ranks && r < 64; r++ {
		if !protected[r] {
			killable = append(killable, r)
		}
	}
	maxKills := len(killable) - 2 // keep >= 2 survivors among the killable
	if maxKills < 0 {
		maxKills = 0
	}
	kills := p.Kills
	if kills > maxKills {
		kills = maxKills
	}

	rng := rand.New(rand.NewSource(p.Seed))
	// Events land in [5%, 95%] of the budget: nothing fires before the
	// workload has warmed up, and nothing fires so late its recovery
	// cannot be observed before the run ends.
	at := func() time.Duration {
		lo := p.Budget / 20
		span := p.Budget - 2*lo
		return lo + time.Duration(rng.Int63n(int64(span)+1))
	}

	var events []ChaosEvent
	for i := 0; i < p.CorruptBursts; i++ {
		events = append(events, ChaosEvent{
			At:    at(),
			Kind:  ChaosCorruptBurst,
			Rank:  rng.Intn(p.Ranks),
			Peer:  -1,
			Count: 1 + rng.Intn(4),
			Prob:  0.05 + 0.15*rng.Float64(),
		})
	}
	for i := 0; i < p.LinkFlaps; i++ {
		rank := rng.Intn(p.Ranks)
		peer := rng.Intn(p.Ranks)
		if peer == rank {
			peer = (peer + 1) % p.Ranks
		}
		events = append(events, ChaosEvent{
			At:    at(),
			Kind:  ChaosLinkFlap,
			Rank:  rank,
			Peer:  peer,
			Count: -1, // down until the runner restores it
			Hold:  p.Budget/50 + time.Duration(rng.Int63n(int64(p.Budget/50)+1)),
		})
	}
	rng.Shuffle(len(killable), func(i, j int) { killable[i], killable[j] = killable[j], killable[i] })
	for i := 0; i < kills; i++ {
		events = append(events, ChaosEvent{
			At:   at(),
			Kind: ChaosKill,
			Rank: killable[i],
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// ChaosRunner replays a schedule against a fault-wrapped world. Events
// fire from a single goroutine at their scheduled offsets; kills are
// reported through OnKill so the harness can watch recovery happen.
type ChaosRunner struct {
	nics   []*FaultNIC
	events []ChaosEvent

	// OnEvent, when non-nil, observes every event as it is applied
	// (after injection). Called from the runner goroutine.
	OnEvent func(ChaosEvent)
	// OnKill, when non-nil, is called with the victim rank right after a
	// kill is injected.
	OnKill func(rank int)

	mu      sync.Mutex
	applied int
	killed  []int

	stop chan struct{}
	done chan struct{}
	// pending link restorations, waited on before done closes so Stop
	// leaves no timer goroutines behind.
	restores sync.WaitGroup
}

// NewChaosRunner builds a runner over the given NICs (index = rank).
// Events referencing out-of-range ranks are skipped, not an error.
func NewChaosRunner(nics []*FaultNIC, events []ChaosEvent) *ChaosRunner {
	return &ChaosRunner{
		nics:   nics,
		events: events,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the runner goroutine. Call Stop to halt early; the
// runner also finishes on its own once every event has fired.
func (c *ChaosRunner) Start() { go c.run() }

// Stop halts the runner and waits for its goroutine (and any pending
// link restorations) to exit, so leak checks see a clean world.
// Safe to call after the schedule has drained.
func (c *ChaosRunner) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// Applied returns how many events have been injected so far.
func (c *ChaosRunner) Applied() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// Killed returns the ranks killed so far, in kill order.
func (c *ChaosRunner) Killed() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.killed...)
}

func (c *ChaosRunner) run() {
	defer close(c.done)
	defer c.restores.Wait()
	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for _, ev := range c.events {
		wait := ev.At - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-c.stop:
				return
			case <-timer.C:
			}
		} else {
			select {
			case <-c.stop:
				return
			default:
			}
		}
		c.inject(ev)
	}
}

func (c *ChaosRunner) inject(ev ChaosEvent) {
	if ev.Rank < 0 || ev.Rank >= len(c.nics) {
		return
	}
	nic := c.nics[ev.Rank]
	switch ev.Kind {
	case ChaosCorruptBurst:
		nic.AddRule(FaultRule{Peer: ev.Peer, Action: Corrupt, Prob: ev.Prob, Count: ev.Count})
	case ChaosLinkFlap:
		i := nic.AddRule(FaultRule{Peer: ev.Peer, Action: LinkDown, Prob: 1, Count: 1, Down: ev.Count})
		hold := ev.Hold
		if hold <= 0 {
			hold = 50 * time.Millisecond
		}
		c.restores.Add(1)
		go func() {
			defer c.restores.Done()
			t := time.NewTimer(hold)
			defer t.Stop()
			select {
			case <-c.stop:
			case <-t.C:
			}
			nic.DisableRule(i)
			nic.LinkUp(ev.Peer)
		}()
	case ChaosKill:
		if nic.Kills().Dead(ev.Rank) {
			return
		}
		nic.Kill()
		c.mu.Lock()
		c.killed = append(c.killed, ev.Rank)
		c.mu.Unlock()
		if c.OnKill != nil {
			c.OnKill(ev.Rank)
		}
	}
	c.mu.Lock()
	c.applied++
	c.mu.Unlock()
	if c.OnEvent != nil {
		c.OnEvent(ev)
	}
}
