// Package fabric provides the simulated network substrate underneath the
// UCP-like transport layer.
//
// The paper's prototype ran on two InfiniBand-connected nodes through
// UCX/UCP. This package substitutes a fabric abstraction with two
// providers:
//
//   - inproc: ranks are goroutines in one process; links are channels and
//     every wire crossing is charged an explicit staging copy, exactly like
//     a NIC moving bytes through its send/receive rings. Rendezvous
//     transfers use a registered-memory "Get" that copies directly from the
//     remote Source into the local Sink (the shared-memory analogue of an
//     RDMA read).
//   - tcp: ranks are separate processes; packets travel over real sockets
//     with gather writes (net.Buffers, the writev analogue of an iovec
//     send) and the Get primitive is implemented as a request/response
//     protocol.
//
// The copy accounting is what makes the paper's results reproducible:
// packed sends pay user-pack + wire + user-unpack copies while region
// (iovec) sends let the wire read user memory directly.
package fabric

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"mpicd/internal/obs"
)

// Kind identifies the protocol-level meaning of a packet. The fabric does
// not interpret it; the transport layer above defines the values below
// the reserved range.
type Kind uint8

// Kinds at and above KindFabricReserved belong to fabric-level services;
// transport layers must allocate their kinds below it. The heartbeat
// detector (see Detector) owns the low half of the range (0xF0..0xF7);
// byte-stream providers keep their internal frame kinds in the high half
// (0xF8..) so their read loops never consume detector traffic.
const (
	KindFabricReserved Kind = 0xF0
	// KindHeartbeatPing is a liveness probe; Aux0 carries the sender's
	// send timestamp (ns) to be echoed back.
	KindHeartbeatPing Kind = 0xF0
	// KindHeartbeatPong answers a ping, echoing the probe timestamp in
	// Aux0 so the prober can measure round-trip time.
	KindHeartbeatPong Kind = 0xF1
)

// Flags carried in a packet header.
const (
	// FlagUnordered marks a packet that the fabric may reorder relative to
	// other unordered packets on the same link (used to exercise the
	// custom-datatype inorder contract).
	FlagUnordered uint8 = 1 << iota
)

// Header is the fixed-size packet header. The transport layer owns the
// interpretation of every field except From, which the fabric fills in.
type Header struct {
	Kind   Kind
	Flags  uint8
	Tag    uint64
	MsgID  uint64
	Offset int64 // byte offset of this fragment within its message
	Total  int64 // total message payload bytes
	Aux0   int64 // transport-defined (e.g. packed-part length)
	Aux1   int64 // transport-defined (e.g. remote memory key)
}

// headerWireSize is the encoded size of a Header on byte-stream providers.
const headerWireSize = 1 + 1 + 8 + 8 + 8 + 8 + 8 + 8

// Packet is a received wire buffer. Payload aliases fabric-owned memory and
// is valid only until Release is called; receivers must copy out (or consume
// through a Sink) before releasing.
type Packet struct {
	From    int
	Hdr     Header
	Payload []byte
	release func()
}

// Release returns the wire buffer to the fabric. It is safe to call on the
// zero value and to call exactly once per received packet.
func (p *Packet) Release() {
	if p.release != nil {
		p.release()
		p.release = nil
	}
}

// NIC is one rank's attachment to the fabric.
//
// Send-side calls copy bytes into fabric-owned wire buffers (the staging
// copy every real NIC pays on the host side unless it does zero-copy DMA).
// Get is the zero-copy path: it moves bytes from a remote registered Source
// into a local Sink with the minimum number of copies the endpoints allow
// (one when both expose direct windows).
type NIC interface {
	// Rank returns this NIC's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks on the fabric.
	Size() int

	// Send copies the payload slices, in order, into a single wire buffer
	// and delivers it to rank `to`. The total payload must not exceed
	// MaxFragSize. Gather semantics: the scatter list is flattened on the
	// wire, exactly like writev.
	Send(to int, hdr Header, payload ...[]byte) error

	// SendFrom reads up to n bytes at offset off from src into the wire
	// buffer (one staging copy) and delivers the fragment to rank `to`.
	// It returns the number of bytes actually packed and sent, which may
	// be less than n when the source packs partially (the custom-datatype
	// pack callback is allowed to underfill a fragment). A zero-byte pack
	// before the source is exhausted is reported as ErrShortTransfer.
	SendFrom(to int, hdr Header, src Source, off, n int64) (int64, error)

	// Recv blocks for the next inbound packet. ok is false after Close.
	Recv() (pkt *Packet, ok bool)

	// Register exposes src for remote Get operations and returns its key.
	Register(src Source) uint64
	// Deregister revokes a key returned by Register.
	Deregister(key uint64)
	// Get pulls n bytes at offset off of the remote Source registered
	// under key at rank `from`, writing them at offset sinkOff of sink.
	Get(from int, key uint64, off int64, sink Sink, sinkOff, n int64) error

	// Close detaches the NIC; pending and future Recv calls return ok=false.
	Close() error
}

// Config tunes fabric behaviour. The zero value is usable; NewConfig fills
// in defaults.
type Config struct {
	// FragSize is the maximum wire fragment (MTU) in bytes.
	FragSize int
	// InboxDepth is the per-link receive queue depth in packets.
	InboxDepth int
	// OutOfOrder enables reordering of FlagUnordered packets, with
	// deterministic behaviour derived from Seed.
	OutOfOrder bool
	// Seed drives the out-of-order shuffle.
	Seed int64
	// PerPacket is an artificial per-packet latency (busy-wait) used to
	// model link/NIC per-message overhead. Zero disables it.
	PerPacket time.Duration
	// PerGet is an artificial per-Get-window overhead modelling the RDMA
	// read round trip. Zero disables it.
	PerGet time.Duration
	// Checksum enables CRC32C integrity protection on byte-stream
	// providers: TCP Get responses carry a per-frame checksum verified
	// before the payload touches the sink (a mismatch fails the Get with
	// ErrCorrupt so the transport can retry). The in-process provider
	// moves bytes memory-to-memory and ignores it.
	Checksum bool
	// Obs, when non-nil, is the metrics registry providers report into
	// (TCP registers link-health gauges under fabric.r<rank>.*). Nil
	// disables provider-level observability at zero cost.
	Obs *obs.Registry

	// DialTimeout bounds connection establishment on byte-stream
	// providers: the eager-mesh wait, each lazy first dial, and each
	// redial campaign after a connection breaks. Zero means 30s.
	DialTimeout time.Duration
	// DialBackoff paces connection attempts during establishment and
	// redial. The zero value means 20ms base, 1s cap, factor 2,
	// jitter 0.25.
	DialBackoff Backoff
	// EagerMesh makes Join/NewTCP dial every lower rank up front and
	// block until the full mesh is up — the pre-lazy-dialing behaviour.
	// Off by default: at 128+ ranks the O(N²) simultaneous dials
	// stampede listener backlogs, so connections are established on
	// first use instead.
	EagerMesh bool

	// Epoch is this process's incarnation number under its rank — the
	// launcher's restart counter (0 for an original world member).
	// Byte-stream providers announce it in the connection handshake, in
	// both directions; a hello or verdict carrying a HIGHER epoch than
	// previously recorded for that rank, from a rank this side had
	// already communicated with, is hard evidence that the rank's
	// previous incarnation died. Without it a fast respawn masks the
	// death: the replacement reconnects and heartbeats under the same
	// rank before the silence threshold expires, and survivors hang
	// forever in collectives the dead incarnation will never finish.
	Epoch uint32

	// RingBytes is the per-direction eager ring capacity of the SHM
	// provider (rounded up to a power of two). Zero selects a default.
	RingBytes int
	// WinBytes is the shared pull-window size of the SHM provider's
	// large-message Get path. Zero selects a default.
	WinBytes int
}

// DefaultFragSize matches a typical transport bounce-buffer size.
const DefaultFragSize = 16 * 1024

// MaxFragSize bounds a single wire fragment across all providers.
const MaxFragSize = 1 << 20

// NewConfig returns cfg with zero fields replaced by defaults.
func NewConfig(cfg Config) Config {
	if cfg.FragSize <= 0 {
		cfg.FragSize = DefaultFragSize
	}
	if cfg.FragSize > MaxFragSize {
		cfg.FragSize = MaxFragSize
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 1024
	}
	return cfg
}

// ErrClosed is returned by operations on a closed NIC.
var ErrClosed = errors.New("fabric: NIC closed")

// ErrBadKey is returned by Get when the remote key is unknown.
var ErrBadKey = errors.New("fabric: unknown memory key")

// ErrShortTransfer is returned when a Source or Sink ends before the
// requested byte count was moved.
var ErrShortTransfer = errors.New("fabric: short transfer")

// ErrLinkDown is returned when the path to a peer is (possibly
// transiently) unavailable: a TCP connection broke and has not been
// redialed yet, or a fault plan has taken the link down. Callers may
// retry after a backoff.
var ErrLinkDown = errors.New("fabric: link down")

// ErrCorrupt is returned when a checksum-protected transfer fails
// integrity verification. The payload was discarded before delivery, so
// retrying is safe.
var ErrCorrupt = errors.New("fabric: payload corrupted (checksum mismatch)")

// ErrRankDead is returned when an operation targets a rank that a fault
// plan has permanently killed (see the Kill action). Unlike ErrLinkDown
// it is not transient: the process is gone and retrying cannot succeed.
var ErrRankDead = errors.New("fabric: rank dead")

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// CRC32 computes the Castagnoli CRC32 the stack uses for payload
// integrity (fast on amd64/arm64 via the hardware instruction).
func CRC32(b []byte) uint32 { return crc32.Checksum(b, crcTab) }

func rangeErr(what string, rank, size int) error {
	return fmt.Errorf("fabric: %s rank %d out of range [0,%d)", what, rank, size)
}

// spin busy-waits for roughly d. Sub-microsecond sleeps are not achievable
// with the runtime timer, and the benchmarks need stable per-packet costs,
// so a calibrated spin is used instead.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
