package fabric

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Inproc is an in-process fabric: every rank is a goroutine, links are
// channels, and rendezvous Gets read the remote Source directly (the
// shared-memory analogue of an RDMA read).
type Inproc struct {
	cfg  Config
	nics []*inprocNIC
	pool *bufPool // wire buffers in FragSize-multiple size classes

	regMu   sync.RWMutex
	regs    map[regKey]Source
	nextKey atomic.Uint64
}

type regKey struct {
	rank int
	key  uint64
}

// NewInproc creates an in-process fabric with n ranks.
func NewInproc(n int, cfg Config) *Inproc {
	cfg = NewConfig(cfg)
	f := &Inproc{
		cfg:  cfg,
		pool: newBufPool(cfg.FragSize),
		regs: make(map[regKey]Source),
	}
	if reg := cfg.Obs; reg != nil {
		reg.GaugeFunc("fabric.pool_outstanding", f.pool.Outstanding)
	}
	f.nics = make([]*inprocNIC, n)
	for i := range f.nics {
		f.nics[i] = &inprocNIC{
			fab:   f,
			rank:  i,
			inbox: make(chan *Packet, cfg.InboxDepth),
			done:  make(chan struct{}),
		}
		if cfg.OutOfOrder {
			f.nics[i].rng = rand.New(rand.NewSource(cfg.Seed + int64(i)))
		}
	}
	return f
}

// NIC returns rank's attachment.
func (f *Inproc) NIC(rank int) NIC { return f.nics[rank] }

// Size returns the number of ranks.
func (f *Inproc) Size() int { return len(f.nics) }

// Close closes every NIC on the fabric.
func (f *Inproc) Close() {
	for _, n := range f.nics {
		n.Close()
	}
}

// PoolOutstanding returns the number of wire buffers currently checked
// out of the fabric's pool — zero once every packet has been released.
// Leak checks diff it across a workload (obs.LeakGauge).
func (f *Inproc) PoolOutstanding() int64 { return f.pool.Outstanding() }

func (f *Inproc) getBuf(n int) *[]byte { return f.pool.get(n) }

func (f *Inproc) putBuf(b *[]byte) { f.pool.put(b) }

type inprocNIC struct {
	fab   *Inproc
	rank  int
	inbox chan *Packet

	mu     sync.Mutex
	closed bool
	done   chan struct{}

	// held implements deterministic adjacent-swap reordering of
	// FlagUnordered packets when cfg.OutOfOrder is set.
	held     *Packet
	heldDst  int
	rng      *rand.Rand
	sendMu   sync.Mutex
	closeOne sync.Once
}

func (n *inprocNIC) Rank() int { return n.rank }
func (n *inprocNIC) Size() int { return len(n.fab.nics) }

func (n *inprocNIC) Send(to int, hdr Header, payload ...[]byte) error {
	total := 0
	for _, p := range payload {
		total += len(p)
	}
	if total > MaxFragSize {
		return fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", total, MaxFragSize)
	}
	buf := n.fab.getBuf(total)
	w := (*buf)[:0]
	for _, p := range payload {
		w = append(w, p...) // staging copy into the wire buffer
	}
	return n.deliver(to, hdr, w, buf)
}

func (n *inprocNIC) SendFrom(to int, hdr Header, src Source, off, size int64) (int64, error) {
	if size > MaxFragSize {
		return 0, fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", size, MaxFragSize)
	}
	buf := n.fab.getBuf(int(size))
	w := (*buf)[:size]
	got, err := src.ReadAt(w, off) // staging copy (packing) into the wire buffer
	if err != nil && err != io.EOF {
		n.fab.putBuf(buf)
		return 0, err
	}
	if got == 0 && size > 0 {
		n.fab.putBuf(buf)
		return 0, ErrShortTransfer
	}
	return int64(got), n.deliver(to, hdr, w[:got], buf)
}

// deliver enqueues the packet, applying the out-of-order shuffle when
// enabled. Only packets flagged FlagUnordered may be swapped with the
// immediately following packet to the same destination; an ordered packet
// always flushes any held packet first, so transports that mark their final
// fragment ordered get a bounded reorder window.
func (n *inprocNIC) deliver(to int, hdr Header, payload []byte, buf *[]byte) error {
	if to < 0 || to >= len(n.fab.nics) {
		n.fab.putBuf(buf)
		return rangeErr("destination", to, len(n.fab.nics))
	}
	spin(n.fab.cfg.PerPacket)
	pkt := &Packet{
		From:    n.rank,
		Hdr:     hdr,
		Payload: payload,
		release: func() { n.fab.putBuf(buf) },
	}
	if n.rng == nil {
		return n.enqueue(to, pkt)
	}

	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	if n.held != nil {
		if n.heldDst == to {
			// Swap: deliver the new packet before the held one.
			if err := n.enqueue(to, pkt); err != nil {
				return err
			}
			held := n.held
			n.held = nil
			return n.enqueue(to, held)
		}
		held, dst := n.held, n.heldDst
		n.held = nil
		if err := n.enqueue(dst, held); err != nil {
			return err
		}
	}
	if hdr.Flags&FlagUnordered != 0 && n.rng.Intn(2) == 0 {
		n.held = pkt
		n.heldDst = to
		return nil
	}
	return n.enqueue(to, pkt)
}

func (n *inprocNIC) enqueue(to int, pkt *Packet) error {
	peer := n.fab.nics[to]
	select {
	case <-peer.done:
		pkt.Release()
		return ErrClosed
	default:
	}
	select {
	case <-peer.done:
		pkt.Release()
		return ErrClosed
	case peer.inbox <- pkt:
		return nil
	}
}

func (n *inprocNIC) Recv() (*Packet, bool) {
	select {
	case pkt := <-n.inbox:
		return pkt, true
	case <-n.done:
		// Drain anything that raced in before close.
		select {
		case pkt := <-n.inbox:
			return pkt, true
		default:
			return nil, false
		}
	}
}

func (n *inprocNIC) Register(src Source) uint64 {
	key := n.fab.nextKey.Add(1)
	n.fab.regMu.Lock()
	n.fab.regs[regKey{n.rank, key}] = src
	n.fab.regMu.Unlock()
	return key
}

func (n *inprocNIC) Deregister(key uint64) {
	n.fab.regMu.Lock()
	delete(n.fab.regs, regKey{n.rank, key})
	n.fab.regMu.Unlock()
}

func (n *inprocNIC) Get(from int, key uint64, off int64, sink Sink, sinkOff, size int64) error {
	if from < 0 || from >= len(n.fab.nics) {
		return rangeErr("source", from, len(n.fab.nics))
	}
	n.fab.regMu.RLock()
	src, ok := n.fab.regs[regKey{from, key}]
	n.fab.regMu.RUnlock()
	if !ok {
		return ErrBadKey
	}
	bounce := n.fab.getBuf(n.fab.cfg.FragSize)
	defer n.fab.putBuf(bounce)
	perWindow := func() { spin(n.fab.cfg.PerGet) }
	if n.fab.cfg.PerGet == 0 {
		perWindow = nil
	}
	return pull(src, off, sink, sinkOff, size, (*bounce)[:n.fab.cfg.FragSize], perWindow)
}

func (n *inprocNIC) Close() error {
	n.closeOne.Do(func() {
		n.sendMu.Lock()
		if n.held != nil {
			held, dst := n.held, n.heldDst
			n.held = nil
			_ = n.enqueue(dst, held)
		}
		n.sendMu.Unlock()
		n.mu.Lock()
		n.closed = true
		close(n.done)
		n.mu.Unlock()
	})
	return nil
}
