package fabric

import (
	"fmt"
	"sync/atomic"
	"time"
)

// A tiny always-on connection-lifecycle event ring shared by every TCP
// provider in the process. Recording is a few atomic ops and two stores —
// cheap enough to leave enabled — and events only occur on connection
// lifecycle transitions (install, drop, redial, rejected hello), which are
// rare. ConnTrace formats the ring for post-mortem diagnosis of link
// flaps; the chaos soak report includes it when a run fails.

type connEvent struct {
	when time.Time
	rank int
	peer int
	kind uint8
	note int64
}

const (
	cevInstall     uint8 = iota + 1 // conn installed; note=1 if it replaced a live conn
	cevDrop                         // dropConn tore down the current conn; note=site id
	cevDropStale                    // dropConn on an already-replaced conn; note=site id
	cevHelloReject                  // inbound hello with out-of-range rank; note=claimed rank
	cevDialOK                       // dialPeer established a connection
	cevDialFail                     // dialPeer gave up (deadline or closed)
	cevHelloYield                   // simultaneous dial: told the lower rank to wait for ours
	cevRevive                       // ReviveRank forgot all connection state for the peer
	cevEpochDeath                   // handshake announced a higher incarnation; note=new epoch
)

// Drop sites, recorded in the event note so a trace distinguishes which
// I/O path saw the socket failure.
const (
	dropSiteHeader  int64 = 1 // readLoop: frame header read failed
	dropSitePayload int64 = 2 // readLoop: frame payload read failed
	dropSiteWrite   int64 = 3 // writeFrame: gather write failed
)

const connRingSize = 256 // power of two

var (
	connRing    [connRingSize]connEvent
	connRingPos atomic.Uint64
)

func connTrace(rank, peer int, kind uint8, note int64) {
	i := (connRingPos.Add(1) - 1) % connRingSize
	connRing[i] = connEvent{when: time.Now(), rank: rank, peer: peer, kind: kind, note: note}
}

// ConnTrace returns the recorded connection-lifecycle events, oldest
// first, formatted one per line. Best-effort: recording is lock-free, so
// an event racing the snapshot may render partially — fine for a
// diagnostic trace.
func ConnTrace() []string {
	pos := connRingPos.Load()
	n := pos
	if n > connRingSize {
		n = connRingSize
	}
	out := make([]string, 0, n)
	for k := uint64(0); k < n; k++ {
		ev := connRing[(pos-n+k)%connRingSize]
		if ev.kind == 0 {
			continue
		}
		var what string
		switch ev.kind {
		case cevInstall:
			what = "install"
			if ev.note == 1 {
				what = "install(replaced live conn)"
			}
		case cevDrop:
			what = fmt.Sprintf("drop(site=%d)", ev.note)
		case cevDropStale:
			what = fmt.Sprintf("drop-stale(site=%d)", ev.note)
		case cevHelloReject:
			what = fmt.Sprintf("hello-reject(claimed=%d)", ev.note)
		case cevDialOK:
			what = "dial-ok"
		case cevDialFail:
			what = "dial-fail"
		case cevHelloYield:
			what = "hello-yield"
		case cevRevive:
			what = "revive"
		case cevEpochDeath:
			what = fmt.Sprintf("epoch-death(new-epoch=%d)", ev.note)
		default:
			what = fmt.Sprintf("kind=%d", ev.kind)
		}
		out = append(out, fmt.Sprintf("%s r%d peer=%d %s",
			ev.when.Format("15:04:05.000000"), ev.rank, ev.peer, what))
	}
	return out
}
