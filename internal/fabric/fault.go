package fabric

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpicd/internal/obs"
)

// This file implements a deterministic fault-injection provider: a NIC
// wrapper that perturbs traffic according to a seeded FaultPlan. It is
// the adversary the transport layer's recovery machinery (checksums,
// retransmission, duplicate suppression, Get retries) is tested against.

// FaultAction identifies one kind of injected fault.
type FaultAction int

// Injectable faults. Drop..Truncate apply to outbound packets (Send and
// SendFrom); FailGet applies to Get; LinkDown silently discards every
// subsequent send to the peer (and fails Gets from it) for a bounded
// number of operations.
const (
	// Drop discards the packet.
	Drop FaultAction = iota
	// Duplicate delivers the packet twice.
	Duplicate
	// Reorder holds the packet and delivers it after the next send (the
	// hold flushes on the next send to any peer and on Close).
	Reorder
	// Delay sleeps Rule.Delay before delivering.
	Delay
	// Corrupt flips one payload byte (chosen by the seeded RNG).
	Corrupt
	// Truncate cuts Rule.Bytes (default 1) bytes off the payload tail.
	Truncate
	// FailGet fails a Get with Rule.Err (default ErrLinkDown).
	FailGet
	// LinkDown drops the firing send and the next Rule.Down sends to the
	// peer, and fails Gets from it; Down < 0 keeps the link down forever.
	LinkDown
	// Kill permanently deadens this NIC's rank for every peer and every
	// operation: the firing send and all subsequent sends are discarded,
	// and Gets fail with ErrRankDead. When the plan shares a KillSwitch,
	// the death is global — every other FaultNIC on the same switch also
	// drops traffic to the dead rank and fails Gets from it, which is what
	// distinguishes process death from the per-peer LinkDown rule.
	Kill
)

func (a FaultAction) String() string {
	switch a {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case FailGet:
		return "fail-get"
	case LinkDown:
		return "link-down"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("FaultAction(%d)", int(a))
}

// KillSwitch is the shared death registry of a fault-injected world: a
// bitmask of permanently dead ranks consulted by every FaultNIC bound to
// it. Sharing one switch across all ranks' plans is what makes a Kill
// behave like process death — no peer can reach the dead rank in either
// direction. Ranks >= 64 cannot be tracked (fault worlds are small).
type KillSwitch struct {
	mask atomic.Uint64
}

// NewKillSwitch returns an empty switch.
func NewKillSwitch() *KillSwitch { return &KillSwitch{} }

// Kill marks rank permanently dead. Idempotent.
func (k *KillSwitch) Kill(rank int) {
	if rank < 0 || rank >= 64 {
		return
	}
	bit := uint64(1) << uint(rank)
	for {
		m := k.mask.Load()
		if m&bit != 0 || k.mask.CompareAndSwap(m, m|bit) {
			return
		}
	}
}

// Dead reports whether rank has been killed.
func (k *KillSwitch) Dead(rank int) bool {
	if rank < 0 || rank >= 64 {
		return false
	}
	return k.mask.Load()&(uint64(1)<<uint(rank)) != 0
}

// Mask returns the dead-rank bitmask (bit i = rank i dead).
func (k *KillSwitch) Mask() uint64 { return k.mask.Load() }

// FaultRule is one per-link fault in a plan. Rules are evaluated in plan
// order against every eligible operation; the first rule that fires wins
// for that operation.
type FaultRule struct {
	// Peer restricts the rule to traffic to/from one rank; -1 matches any.
	Peer int
	// Kinds restricts packet rules to specific header kinds (e.g. only
	// control messages); empty matches every kind. Ignored by FailGet.
	Kinds []Kind
	// Action selects the fault.
	Action FaultAction
	// Prob is the per-operation firing probability in [0, 1]. Zero never
	// fires (use 1 for always).
	Prob float64
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
	// Delay is the injected latency for Delay rules.
	Delay time.Duration
	// Bytes is how much Truncate cuts (default 1).
	Bytes int
	// Down is the LinkDown duration in sends (negative = forever).
	Down int
	// Err overrides the error FailGet injects (default ErrLinkDown).
	Err error
}

// FaultPlan is a seeded set of fault rules. The same plan and seed
// produce the same fault decisions for the same operation sequence.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
	// Kills, when non-nil, is the shared death registry: Kill rules (and
	// FaultNIC.Kill calls) mark ranks dead on it, and every FaultNIC bound
	// to the same switch enforces the death in both directions. Nil gives
	// the NIC a private switch, which can only express "this rank went
	// mute" — its peers will still deliver traffic *to* it.
	Kills *KillSwitch
}

// FaultStats counts fired faults; all fields are cumulative.
type FaultStats struct {
	Dropped    atomic.Int64 // packets discarded by Drop
	Duplicated atomic.Int64 // packets delivered twice
	Reordered  atomic.Int64 // packets held for late delivery
	Delayed    atomic.Int64 // packets delayed
	Corrupted  atomic.Int64 // packets with a flipped payload byte
	Truncated  atomic.Int64 // packets with a shortened payload
	GetsFailed atomic.Int64 // Gets failed by FailGet or a down link
	DownDrops  atomic.Int64 // packets discarded because the link was down
	LinkDowns  atomic.Int64 // times a LinkDown rule fired
	Kills      atomic.Int64 // times a Kill rule (or Kill call) fired here
	KillDrops  atomic.Int64 // packets discarded because a rank was dead
}

// FaultNIC wraps a NIC and applies a FaultPlan to its traffic. Recv,
// Register and Deregister pass through untouched; Send, SendFrom and Get
// run the plan. All fault decisions come from one seeded RNG, so a fixed
// plan is reproducible for a fixed operation order.
type FaultNIC struct {
	inner NIC
	rules []FaultRule
	kills *KillSwitch

	mu    sync.Mutex
	rng   *rand.Rand
	fired []int       // per-rule fire counts
	down  map[int]int // peer -> remaining down-sends (negative = forever)
	held  *heldSend
	stats FaultStats
}

type heldSend struct {
	to      int
	hdr     Header
	payload []byte
}

// WrapFault wraps nic with a fault plan. The rule list is copied.
func WrapFault(nic NIC, plan FaultPlan) *FaultNIC {
	ks := plan.Kills
	if ks == nil {
		ks = NewKillSwitch()
	}
	return &FaultNIC{
		inner: nic,
		rules: append([]FaultRule(nil), plan.Rules...),
		kills: ks,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		fired: make([]int, len(plan.Rules)),
		down:  make(map[int]int),
	}
}

// Kill marks this NIC's own rank permanently dead on its kill switch
// (shared or private), exactly as if a Kill rule had fired: every
// subsequent send from it is discarded and Gets involving it fail with
// ErrRankDead. Tests use it to kill a rank at a precise point in the
// protocol rather than after a rule-counted number of operations.
func (f *FaultNIC) Kill() {
	f.kills.Kill(f.inner.Rank())
	f.stats.Kills.Add(1)
	f.mu.Lock()
	f.held = nil // a dead rank's in-flight (held) packet dies with it
	f.mu.Unlock()
}

// Kills exposes the NIC's kill switch so tests and harnesses can share
// it across ranks or kill ranks directly.
func (f *FaultNIC) Kills() *KillSwitch { return f.kills }

// Stats exposes the fired-fault counters.
func (f *FaultNIC) Stats() *FaultStats { return &f.stats }

// RegisterObs exposes the fired-fault counters as gauges under
// fault.r<rank>.*, plus faults_total summing every injected fault, so a
// stats dump shows exactly what adversity a run survived.
func (f *FaultNIC) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p := func(name string) string { return fmt.Sprintf("fault.r%d.%s", f.inner.Rank(), name) }
	s := &f.stats
	counters := []struct {
		name string
		fn   obs.Gauge
	}{
		{"dropped", s.Dropped.Load},
		{"duplicated", s.Duplicated.Load},
		{"reordered", s.Reordered.Load},
		{"delayed", s.Delayed.Load},
		{"corrupted", s.Corrupted.Load},
		{"truncated", s.Truncated.Load},
		{"gets_failed", s.GetsFailed.Load},
		{"down_drops", s.DownDrops.Load},
		{"link_downs", s.LinkDowns.Load},
		{"kills_fired", s.Kills.Load},
		{"kill_drops", s.KillDrops.Load},
	}
	for _, c := range counters {
		reg.GaugeFunc(p(c.name), c.fn)
	}
	reg.GaugeFunc(p("faults_total"), func() int64 {
		return s.Dropped.Load() + s.Duplicated.Load() + s.Reordered.Load() +
			s.Delayed.Load() + s.Corrupted.Load() + s.Truncated.Load() +
			s.GetsFailed.Load() + s.DownDrops.Load() + s.LinkDowns.Load() +
			s.Kills.Load() + s.KillDrops.Load()
	})
}

// RuleFired reports how many times rule i has fired.
func (f *FaultNIC) RuleFired(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired[i]
}

// AddRule appends a rule to the live plan and returns its index. Unlike
// the rules fixed at WrapFault time, injected rules arrive while traffic
// is flowing — this is how a chaos scheduler turns adversity on and off
// mid-run. The rule is evaluated after all earlier rules, with the same
// first-match-wins semantics.
func (f *FaultNIC) AddRule(r FaultRule) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
	f.fired = append(f.fired, 0)
	return len(f.rules) - 1
}

// DisableRule retires rule i: it can never fire again. Counts already
// fired are kept. Out-of-range indices are ignored.
func (f *FaultNIC) DisableRule(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i >= 0 && i < len(f.rules) {
		f.rules[i].Prob = 0
		f.rules[i].Count = -1 // fired < -1 is never true: rule is ineligible
	}
}

// LinkUp restores a link a LinkDown rule (or burst) took down, as if
// the cable were plugged back in. No-op if the link was up.
func (f *FaultNIC) LinkUp(peer int) {
	f.mu.Lock()
	delete(f.down, peer)
	f.mu.Unlock()
}

// Rank implements NIC.
func (f *FaultNIC) Rank() int { return f.inner.Rank() }

// Size implements NIC.
func (f *FaultNIC) Size() int { return f.inner.Size() }

// Recv implements NIC (pass-through).
func (f *FaultNIC) Recv() (*Packet, bool) { return f.inner.Recv() }

// Register implements NIC (pass-through).
func (f *FaultNIC) Register(src Source) uint64 { return f.inner.Register(src) }

// Deregister implements NIC (pass-through).
func (f *FaultNIC) Deregister(key uint64) { f.inner.Deregister(key) }

// Close flushes any held (reordered) packet and closes the inner NIC.
func (f *FaultNIC) Close() error {
	f.mu.Lock()
	held := f.held
	f.held = nil
	f.mu.Unlock()
	if held != nil {
		_ = f.inner.Send(held.to, held.hdr, held.payload)
	}
	return f.inner.Close()
}

// Send implements NIC: the payload is flattened, run through the plan,
// and forwarded (or dropped/duplicated/held/corrupted) accordingly.
func (f *FaultNIC) Send(to int, hdr Header, payload ...[]byte) error {
	total := 0
	for _, p := range payload {
		total += len(p)
	}
	flat := make([]byte, 0, total)
	for _, p := range payload {
		flat = append(flat, p...)
	}
	return f.apply(to, hdr, flat)
}

// SendFrom implements NIC by staging the source bytes locally (so the
// plan can corrupt or truncate them) and forwarding through Send logic.
// Partial packs keep SendFrom semantics: the packed byte count is
// returned even when the packet is then dropped, exactly as a lossy wire
// would behave.
func (f *FaultNIC) SendFrom(to int, hdr Header, src Source, off, n int64) (int64, error) {
	if n > MaxFragSize {
		return 0, fmt.Errorf("fabric: fragment of %d bytes exceeds max %d", n, MaxFragSize)
	}
	buf := make([]byte, n)
	got, err := src.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return 0, err
	}
	if got == 0 && n > 0 {
		return 0, ErrShortTransfer
	}
	if err := f.apply(to, hdr, buf[:got]); err != nil {
		return 0, err
	}
	return int64(got), nil
}

// Get implements NIC. FailGet rules and down links inject errors; a
// successful call passes through to the inner NIC untouched (in-process
// Gets are memory moves — detected corruption is modelled as a failed
// Get, the way a checksum-verifying byte-stream provider surfaces it).
func (f *FaultNIC) Get(from int, key uint64, off int64, sink Sink, sinkOff, n int64) error {
	// A Get touching a dead rank's memory (or issued by a dead rank) fails
	// permanently: the registration died with the process.
	if f.kills.Dead(from) || f.kills.Dead(f.inner.Rank()) {
		f.stats.GetsFailed.Add(1)
		return fmt.Errorf("%w: rank %d killed by fault plan", ErrRankDead, from)
	}
	f.mu.Lock()
	if d, ok := f.down[from]; ok && d != 0 {
		f.mu.Unlock()
		f.stats.GetsFailed.Add(1)
		return fmt.Errorf("%w: fault plan holds link to rank %d down", ErrLinkDown, from)
	}
	for i := range f.rules {
		r := &f.rules[i]
		if r.Action != FailGet || !f.ruleEligibleLocked(i, from) {
			continue
		}
		if f.rng.Float64() >= r.Prob {
			continue
		}
		f.fired[i]++
		f.mu.Unlock()
		f.stats.GetsFailed.Add(1)
		if r.Err != nil {
			return r.Err
		}
		return fmt.Errorf("%w: injected get failure", ErrLinkDown)
	}
	f.mu.Unlock()
	return f.inner.Get(from, key, off, sink, sinkOff, n)
}

// ruleEligibleLocked reports whether rule i may still fire for peer.
func (f *FaultNIC) ruleEligibleLocked(i, peer int) bool {
	r := &f.rules[i]
	if r.Peer >= 0 && r.Peer != peer {
		return false
	}
	return r.Count == 0 || f.fired[i] < r.Count
}

func kindMatches(kinds []Kind, k Kind) bool {
	if len(kinds) == 0 {
		return true
	}
	for _, want := range kinds {
		if want == k {
			return true
		}
	}
	return false
}

// apply runs the plan against one outbound packet. f owns payload.
func (f *FaultNIC) apply(to int, hdr Header, payload []byte) error {
	// A dead endpoint on either side swallows the packet: a dead sender
	// emits nothing, and nothing is deliverable to a dead receiver. No
	// error — the sender of a real network learns of the death only
	// through silence (or the liveness detector above).
	if f.kills.Dead(f.inner.Rank()) || f.kills.Dead(to) {
		f.stats.KillDrops.Add(1)
		if f.kills.Dead(f.inner.Rank()) {
			f.mu.Lock()
			f.held = nil
			f.mu.Unlock()
		}
		return nil
	}
	f.mu.Lock()
	// A held (reordered) packet flushes on the next send: after the new
	// packet when both target the same peer (the swap), before it
	// otherwise (so holds cannot starve).
	held := f.held
	f.held = nil
	if held != nil && held.to != to {
		f.mu.Unlock()
		if err := f.inner.Send(held.to, held.hdr, held.payload); err != nil {
			return err
		}
		f.mu.Lock()
		held = nil
	}
	flushHeld := func(err error) error {
		if held == nil {
			return err
		}
		if serr := f.inner.Send(held.to, held.hdr, held.payload); err == nil {
			err = serr
		}
		return err
	}

	if d, ok := f.down[to]; ok && d != 0 {
		if d > 0 {
			f.down[to] = d - 1
		}
		f.mu.Unlock()
		f.stats.DownDrops.Add(1)
		return flushHeld(nil)
	}

	for i := range f.rules {
		r := &f.rules[i]
		if r.Action == FailGet || !f.ruleEligibleLocked(i, to) {
			continue
		}
		if !kindMatches(r.Kinds, hdr.Kind) {
			continue
		}
		if f.rng.Float64() >= r.Prob {
			continue
		}
		f.fired[i]++
		switch r.Action {
		case Drop:
			f.mu.Unlock()
			f.stats.Dropped.Add(1)
			return flushHeld(nil)
		case Duplicate:
			f.mu.Unlock()
			f.stats.Duplicated.Add(1)
			if err := f.inner.Send(to, hdr, payload); err != nil {
				return flushHeld(err)
			}
			return flushHeld(f.inner.Send(to, hdr, payload))
		case Reorder:
			if held == nil {
				f.held = &heldSend{to: to, hdr: hdr, payload: payload}
				f.mu.Unlock()
				f.stats.Reordered.Add(1)
				return nil
			}
			// Already flushing a same-peer hold: deliver new-then-held,
			// which is itself a reorder of the held packet.
			f.mu.Unlock()
			f.stats.Reordered.Add(1)
			if err := f.inner.Send(to, hdr, payload); err != nil {
				return flushHeld(err)
			}
			return flushHeld(nil)
		case Delay:
			f.mu.Unlock()
			f.stats.Delayed.Add(1)
			time.Sleep(r.Delay)
			if err := f.inner.Send(to, hdr, payload); err != nil {
				return flushHeld(err)
			}
			return flushHeld(nil)
		case Corrupt:
			if len(payload) > 0 {
				payload[f.rng.Intn(len(payload))] ^= 0xFF
				f.stats.Corrupted.Add(1)
			}
			f.mu.Unlock()
			if err := f.inner.Send(to, hdr, payload); err != nil {
				return flushHeld(err)
			}
			return flushHeld(nil)
		case Truncate:
			cut := r.Bytes
			if cut <= 0 {
				cut = 1
			}
			if cut > len(payload) {
				cut = len(payload)
			}
			payload = payload[:len(payload)-cut]
			f.stats.Truncated.Add(1)
			f.mu.Unlock()
			if err := f.inner.Send(to, hdr, payload); err != nil {
				return flushHeld(err)
			}
			return flushHeld(nil)
		case LinkDown:
			f.down[to] = r.Down
			if r.Down == 0 {
				f.down[to] = 1
			}
			f.mu.Unlock()
			f.stats.LinkDowns.Add(1)
			f.stats.DownDrops.Add(1)
			return flushHeld(nil)
		case Kill:
			// The rank running this NIC dies: the firing packet and any
			// held packet vanish with it.
			f.held = nil
			f.mu.Unlock()
			f.kills.Kill(f.inner.Rank())
			f.stats.Kills.Add(1)
			f.stats.KillDrops.Add(1)
			return nil
		}
	}
	f.mu.Unlock()
	if err := f.inner.Send(to, hdr, payload); err != nil {
		return flushHeld(err)
	}
	return flushHeld(nil)
}
