package fabric

import (
	"bytes"
	"sync"
	"testing"
)

func TestInprocSendRecv(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	a, b := f.NIC(0), f.NIC(1)

	payload := make([]byte, 1000)
	fillPattern(payload, 1)
	hdr := Header{Kind: 3, Tag: 42, MsgID: 7, Total: 1000}
	if err := a.Send(1, hdr, payload); err != nil {
		t.Fatal(err)
	}
	pkt, ok := b.Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	defer pkt.Release()
	if pkt.From != 0 || pkt.Hdr != hdr {
		t.Fatalf("got From=%d Hdr=%+v", pkt.From, pkt.Hdr)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestInprocGatherSend(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	p1 := []byte("hello, ")
	p2 := []byte("world")
	if err := f.NIC(0).Send(1, Header{}, p1, p2); err != nil {
		t.Fatal(err)
	}
	pkt, _ := f.NIC(1).Recv()
	defer pkt.Release()
	if string(pkt.Payload) != "hello, world" {
		t.Fatalf("gather payload = %q", pkt.Payload)
	}
}

func TestInprocSendFrom(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	data := make([]byte, 500)
	fillPattern(data, 2)
	n, err := f.NIC(0).SendFrom(1, Header{}, Bytes(data), 100, 200)
	if err != nil || n != 200 {
		t.Fatalf("SendFrom = %d, %v", n, err)
	}
	pkt, _ := f.NIC(1).Recv()
	defer pkt.Release()
	if !bytes.Equal(pkt.Payload, data[100:300]) {
		t.Fatal("SendFrom slice mismatch")
	}
}

func TestInprocPerLinkFIFO(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := f.NIC(0).Send(1, Header{MsgID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		pkt, ok := f.NIC(1).Recv()
		if !ok {
			t.Fatal("early close")
		}
		if pkt.Hdr.MsgID != uint64(i) {
			t.Fatalf("packet %d arrived with MsgID %d: FIFO violated", i, pkt.Hdr.MsgID)
		}
		pkt.Release()
	}
}

func TestInprocRegisterGet(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	data := make([]byte, 100000)
	fillPattern(data, 3)
	key := f.NIC(0).Register(Bytes(data))
	out := make([]byte, 100000)
	if err := f.NIC(1).Get(0, key, 0, Bytes(out), 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("Get content mismatch")
	}
	// Partial, offset Get.
	out2 := make([]byte, 500)
	if err := f.NIC(1).Get(0, key, 1234, Bytes(out2), 0, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2, data[1234:1734]) {
		t.Fatal("partial Get mismatch")
	}
	f.NIC(0).Deregister(key)
	if err := f.NIC(1).Get(0, key, 0, Bytes(out2), 0, 10); err != ErrBadKey {
		t.Fatalf("Get after Deregister err = %v; want ErrBadKey", err)
	}
}

func TestInprocGetIovToIov(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	src, all := makeIov(t, 100, 3, 57, 1000)
	dst, _ := makeIov(t, 60, 1100)
	key := f.NIC(0).Register(src)
	if err := f.NIC(1).Get(0, key, 0, dst, 0, src.Size()); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(all))
	if _, err := dst.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, all) {
		t.Fatal("iov-to-iov Get mismatch")
	}
}

func TestInprocCloseUnblocksRecv(t *testing.T) {
	f := NewInproc(1, Config{})
	nic := f.NIC(0)
	done := make(chan bool)
	go func() {
		_, ok := nic.Recv()
		done <- ok
	}()
	nic.Close()
	if ok := <-done; ok {
		t.Fatal("Recv should report !ok after Close")
	}
	if err := nic.Send(0, Header{}); err != ErrClosed {
		t.Fatalf("Send to closed NIC err = %v; want ErrClosed", err)
	}
}

func TestInprocConcurrentSenders(t *testing.T) {
	f := NewInproc(3, Config{})
	defer f.Close()
	const per = 100
	var wg sync.WaitGroup
	for src := 0; src < 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			payload := make([]byte, 64)
			for i := 0; i < per; i++ {
				if err := f.NIC(src).Send(2, Header{Tag: uint64(src), MsgID: uint64(i)}, payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}
	seen := map[uint64]uint64{}
	for i := 0; i < 2*per; i++ {
		pkt, ok := f.NIC(2).Recv()
		if !ok {
			t.Fatal("early close")
		}
		// Per-source FIFO must hold even with interleaving.
		if pkt.Hdr.MsgID != seen[pkt.Hdr.Tag] {
			t.Fatalf("source %d: got MsgID %d, want %d", pkt.Hdr.Tag, pkt.Hdr.MsgID, seen[pkt.Hdr.Tag])
		}
		seen[pkt.Hdr.Tag]++
		pkt.Release()
	}
	wg.Wait()
}

func TestInprocOutOfOrderReordersUnordered(t *testing.T) {
	f := NewInproc(2, Config{OutOfOrder: true, Seed: 42})
	defer f.Close()
	const n = 64
	for i := 0; i < n; i++ {
		hdr := Header{MsgID: uint64(i)}
		if i < n-1 {
			hdr.Flags = FlagUnordered
		}
		if err := f.NIC(0).Send(1, hdr); err != nil {
			t.Fatal(err)
		}
	}
	var order []uint64
	for i := 0; i < n; i++ {
		pkt, ok := f.NIC(1).Recv()
		if !ok {
			t.Fatal("early close")
		}
		order = append(order, pkt.Hdr.MsgID)
		pkt.Release()
	}
	// All packets arrive exactly once.
	seen := make([]bool, n)
	swapped := false
	for i, id := range order {
		if seen[id] {
			t.Fatalf("duplicate MsgID %d", id)
		}
		seen[id] = true
		if uint64(i) != id {
			swapped = true
		}
	}
	if !swapped {
		t.Fatal("OutOfOrder fabric never reordered; seed produced identity order")
	}
	// The ordered final packet must still arrive last.
	if order[n-1] != n-1 {
		t.Fatalf("ordered packet arrived at position != last: %v", order)
	}
}

func TestInprocLargeSingleFragmentRejected(t *testing.T) {
	f := NewInproc(2, Config{})
	defer f.Close()
	big := make([]byte, MaxFragSize+1)
	if err := f.NIC(0).Send(1, Header{}, big); err == nil {
		t.Fatal("oversized fragment should be rejected")
	}
}
