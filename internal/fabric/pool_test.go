package fabric

import "testing"

func TestBufPoolSizing(t *testing.T) {
	p := newBufPool(1024)
	cases := []struct {
		n       int
		wantCap int
	}{
		{1, 1024},        // sub-fragment rounds up to one fragment
		{1024, 1024},     // exact fragment
		{1025, 2048},     // rounds up to the next fragment multiple
		{3 * 1024, 3072}, // exact multiple
	}
	for _, c := range cases {
		b := p.get(c.n)
		if len(*b) < c.n {
			t.Fatalf("get(%d): len %d too short", c.n, len(*b))
		}
		if cap(*b) != c.wantCap {
			t.Fatalf("get(%d): cap %d, want %d", c.n, cap(*b), c.wantCap)
		}
		p.put(b)
	}
}

// TestBufPoolRecyclesOversized pins the PR's pooling win: buffers larger
// than one fragment are recycled instead of handed to the GC per message.
func TestBufPoolRecyclesOversized(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	p := newBufPool(16 * 1024)
	for _, n := range []int{16 * 1024, 100 * 1024, MaxFragSize} {
		avg := testing.AllocsPerRun(50, func() {
			b := p.get(n)
			p.put(b)
		})
		if avg > 0 {
			t.Fatalf("get(%d)/put cycle allocates %.1f/op, want 0", n, avg)
		}
	}
}

func TestBufPoolDropsForeignBuffers(t *testing.T) {
	p := newBufPool(1024)
	odd := make([]byte, 1000) // not a class size: must be dropped, not pooled
	p.put(&odd)
	huge := make([]byte, 2*MaxFragSize)
	p.put(&huge)
	b := p.get(2 * MaxFragSize) // beyond the class table: plain allocation
	if len(*b) != 2*MaxFragSize {
		t.Fatalf("oversize get: len %d", len(*b))
	}
	p.put(b) // must not panic, silently dropped
}
