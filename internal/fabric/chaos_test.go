package fabric

import (
	"reflect"
	"testing"
	"time"
)

// TestChaosScheduleDeterministic: the whole point of a seeded schedule
// is that a failing soak reproduces from its seed.
func TestChaosScheduleDeterministic(t *testing.T) {
	plan := ChaosPlan{Seed: 42, Budget: time.Minute, Ranks: 8, Protect: []int{0}, Kills: 2}
	a := BuildChaosSchedule(plan)
	b := BuildChaosSchedule(plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan produced different schedules")
	}
	c := BuildChaosSchedule(ChaosPlan{Seed: 43, Budget: time.Minute, Ranks: 8, Protect: []int{0}, Kills: 2})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestChaosScheduleRespectsProtection: protected ranks are never kill
// victims, kill victims are distinct, and enough ranks survive.
func TestChaosScheduleRespectsProtection(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		plan := ChaosPlan{Seed: seed, Budget: time.Minute, Ranks: 5, Protect: []int{0}, Kills: 10}
		kills := map[int]bool{}
		for _, ev := range BuildChaosSchedule(plan) {
			if ev.Kind != ChaosKill {
				if ev.At < plan.Budget/20 || ev.At > plan.Budget-plan.Budget/20 {
					t.Fatalf("seed %d: event at %v outside [5%%, 95%%] of budget", seed, ev.At)
				}
				continue
			}
			if ev.Rank == 0 {
				t.Fatalf("seed %d: protected rank 0 scheduled for death", seed)
			}
			if kills[ev.Rank] {
				t.Fatalf("seed %d: rank %d killed twice", seed, ev.Rank)
			}
			kills[ev.Rank] = true
		}
		// 5 ranks, rank 0 protected, 4 killable => at most 2 kills.
		if len(kills) > 2 {
			t.Fatalf("seed %d: %d kills leaves fewer than 2 survivors", seed, len(kills))
		}
	}
}

// TestFaultNICAddRule: rules injected at runtime fire like plan rules,
// and DisableRule retires them.
func TestFaultNICAddRule(t *testing.T) {
	fab := NewInproc(2, Config{})
	defer fab.Close()
	f := WrapFault(fab.NIC(0), FaultPlan{Seed: 1})

	i := f.AddRule(FaultRule{Peer: -1, Action: Corrupt, Prob: 1, Count: 2})
	payload := []byte{0, 0, 0, 0}
	for k := 0; k < 4; k++ {
		if err := f.Send(1, Header{Kind: 1}, payload); err != nil {
			t.Fatalf("send %d: %v", k, err)
		}
	}
	if got := f.Stats().Corrupted.Load(); got != 2 {
		t.Fatalf("corrupted = %d, want 2 (Count cap)", got)
	}
	if got := f.RuleFired(i); got != 2 {
		t.Fatalf("RuleFired = %d, want 2", got)
	}

	j := f.AddRule(FaultRule{Peer: -1, Action: Drop, Prob: 1})
	if err := f.Send(1, Header{Kind: 1}, payload); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Dropped.Load(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	f.DisableRule(j)
	if err := f.Send(1, Header{Kind: 1}, payload); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Dropped.Load(); got != 1 {
		t.Fatalf("dropped = %d after DisableRule, want still 1", got)
	}
}

// TestFaultNICLinkUp: LinkUp restores a link a LinkDown rule held down
// indefinitely.
func TestFaultNICLinkUp(t *testing.T) {
	fab := NewInproc(2, Config{})
	defer fab.Close()
	f := WrapFault(fab.NIC(0), FaultPlan{Seed: 1})
	i := f.AddRule(FaultRule{Peer: 1, Action: LinkDown, Prob: 1, Count: 1, Down: -1})
	payload := []byte{1}
	_ = f.Send(1, Header{Kind: 1}, payload) // fires LinkDown, dropped
	_ = f.Send(1, Header{Kind: 1}, payload) // link down, dropped
	if got := f.Stats().DownDrops.Load(); got != 2 {
		t.Fatalf("down drops = %d, want 2", got)
	}
	f.DisableRule(i)
	f.LinkUp(1)
	if err := f.Send(1, Header{Kind: 1}, payload); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().DownDrops.Load(); got != 2 {
		t.Fatalf("down drops = %d after LinkUp, want still 2", got)
	}
	// The restored packet actually arrived.
	pkt, ok := fab.NIC(1).Recv()
	if !ok {
		t.Fatal("no packet delivered after LinkUp")
	}
	pkt.Release()
}

// TestChaosRunnerInjects: a compressed schedule fires corrupt rules,
// flaps a link and restores it, and kills exactly the scheduled rank —
// then Stop leaves no goroutines behind (covered again by the leak
// checker in the soak tests).
func TestChaosRunnerInjects(t *testing.T) {
	fab := NewInproc(3, Config{})
	defer fab.Close()
	ks := NewKillSwitch()
	nics := make([]*FaultNIC, 3)
	for r := range nics {
		nics[r] = WrapFault(fab.NIC(r), FaultPlan{Seed: int64(r), Kills: ks})
	}
	events := []ChaosEvent{
		{At: 0, Kind: ChaosCorruptBurst, Rank: 0, Peer: -1, Count: 1, Prob: 1},
		{At: time.Millisecond, Kind: ChaosLinkFlap, Rank: 1, Peer: 0, Count: -1, Hold: 10 * time.Millisecond},
		{At: 2 * time.Millisecond, Kind: ChaosKill, Rank: 2},
	}
	var killed []int
	r := NewChaosRunner(nics, events)
	r.OnKill = func(rank int) { killed = append(killed, rank) }
	r.Start()

	deadline := time.After(2 * time.Second)
	for r.Applied() < len(events) {
		select {
		case <-deadline:
			t.Fatalf("runner applied %d/%d events before deadline", r.Applied(), len(events))
		default:
			time.Sleep(time.Millisecond)
		}
	}
	r.Stop()

	if !reflect.DeepEqual(killed, []int{2}) || !reflect.DeepEqual(r.Killed(), []int{2}) {
		t.Fatalf("killed = %v / %v, want [2]", killed, r.Killed())
	}
	if !ks.Dead(2) {
		t.Fatal("kill switch does not show rank 2 dead")
	}
	// The corrupt rule is live on rank 0.
	if err := nics[0].Send(1, Header{Kind: 1}, []byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	if nics[0].Stats().Corrupted.Load() != 1 {
		t.Fatal("injected corrupt rule did not fire")
	}
	// The flapped link on rank 1 was restored by the hold timer: the
	// packet to rank 0 goes through instead of dropping.
	if err := nics[1].Send(0, Header{Kind: 1}, []byte{0}); err != nil {
		t.Fatal(err)
	}
	pkt, ok := fab.NIC(0).Recv()
	if !ok {
		t.Fatal("no packet delivered to rank 0 after flap restored")
	}
	pkt.Release()
}
