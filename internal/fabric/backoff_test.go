package fabric

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w*time.Millisecond {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		d := b.Delay(1, rng) // nominal 200ms, jittered to [100ms, 300ms]
		if d < 100*time.Millisecond || d > 300*time.Millisecond {
			t.Fatalf("jittered delay %v outside [100ms, 300ms]", d)
		}
	}
	// Jitter never exceeds Max.
	for i := 0; i < 200; i++ {
		if d := b.Delay(10, rng); d > time.Second {
			t.Fatalf("delay %v exceeds cap", d)
		}
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Max: 500 * time.Millisecond, Factor: 2, Jitter: 0.3}
	a := rand.New(rand.NewSource(7))
	c := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if da, dc := b.Delay(i, a), b.Delay(i, c); da != dc {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, dc)
		}
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	d0 := b.Delay(0, nil)
	if d0 != DefaultBackoff.Base {
		t.Fatalf("zero-value first delay = %v, want %v", d0, DefaultBackoff.Base)
	}
	if d := b.Delay(30, nil); d != DefaultBackoff.Max {
		t.Fatalf("zero-value capped delay = %v, want %v", d, DefaultBackoff.Max)
	}
}
