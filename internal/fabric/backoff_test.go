package fabric

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w*time.Millisecond {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		d := b.Delay(1, rng) // nominal 200ms, jittered to [100ms, 300ms]
		if d < 100*time.Millisecond || d > 300*time.Millisecond {
			t.Fatalf("jittered delay %v outside [100ms, 300ms]", d)
		}
	}
	// Jitter never exceeds Max.
	for i := 0; i < 200; i++ {
		if d := b.Delay(10, rng); d > time.Second {
			t.Fatalf("delay %v exceeds cap", d)
		}
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Max: 500 * time.Millisecond, Factor: 2, Jitter: 0.3}
	a := rand.New(rand.NewSource(7))
	c := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if da, dc := b.Delay(i, a), b.Delay(i, c); da != dc {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, dc)
		}
	}
}

// Regression: the growth loop used to iterate `attempt` times with no
// exponent clamp. withDefaults admits Factor == 1 (only < 1 is replaced),
// where the early cap break never fires, so a huge attempt count — e.g.
// from a long-lived retry loop against a partitioned peer — spun the loop
// for minutes. The exponent is now clamped at 63 and the loop also stops
// once the cap is reached.
func TestBackoffHugeAttemptClamped(t *testing.T) {
	cases := []Backoff{
		{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0},
		{Base: 10 * time.Millisecond, Max: time.Second, Factor: 1, Jitter: 0}, // constant backoff
		{Base: time.Nanosecond, Max: time.Hour, Factor: 1.0000001, Jitter: 0},
	}
	for _, b := range cases {
		for _, attempt := range []int{63, 64, 1 << 30, math.MaxInt} {
			start := time.Now()
			d := b.Delay(attempt, nil)
			if took := time.Since(start); took > 100*time.Millisecond {
				t.Fatalf("Factor=%v attempt=%d: Delay took %v (unclamped loop)", b.Factor, attempt, took)
			}
			if d <= 0 || d > b.Max {
				t.Fatalf("Factor=%v attempt=%d: delay %v outside (0, %v]", b.Factor, attempt, d, b.Max)
			}
		}
	}
	// Factor == 1 means constant backoff: every attempt waits Base.
	b := Backoff{Base: 25 * time.Millisecond, Max: time.Second, Factor: 1, Jitter: 0}
	for _, attempt := range []int{0, 1, 63, math.MaxInt} {
		if d := b.Delay(attempt, nil); d != 25*time.Millisecond {
			t.Fatalf("Factor=1 attempt=%d: delay %v, want 25ms", attempt, d)
		}
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	d0 := b.Delay(0, nil)
	if d0 != DefaultBackoff.Base {
		t.Fatalf("zero-value first delay = %v, want %v", d0, DefaultBackoff.Base)
	}
	if d := b.Delay(30, nil); d != DefaultBackoff.Max {
		t.Fatalf("zero-value capped delay = %v, want %v", d, DefaultBackoff.Max)
	}
}
