package fabric

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
)

func newTestRing(t *testing.T, capacity int) *Ring {
	t.Helper()
	r, err := AttachRing(RingMem(capacity), true)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingBasicRoundtrip(t *testing.T) {
	r := newTestRing(t, 1024)
	if !r.Write([]byte("hello"), []byte(" "), []byte("ring")) {
		t.Fatal("write into empty ring failed")
	}
	rec, ok := r.Next()
	if !ok || string(rec) != "hello ring" {
		t.Fatalf("Next = %q, %v", rec, ok)
	}
	r.Advance()
	if _, ok := r.Next(); ok {
		t.Fatal("drained ring still has records")
	}
	if !r.Empty() {
		t.Fatal("drained ring not empty")
	}
}

func TestRingWraparound(t *testing.T) {
	r := newTestRing(t, 1024)
	// Records sized so that after a few the next one straddles the end of
	// the data area and the producer must emit a skip marker.
	rec := make([]byte, 200)
	seq := 0
	consumed := 0
	for round := 0; round < 50; round++ {
		for {
			binary.LittleEndian.PutUint32(rec, uint32(seq))
			fillPattern(rec[4:], byte(seq))
			if !r.Write(rec) {
				break
			}
			seq++
		}
		for {
			got, ok := r.Next()
			if !ok {
				break
			}
			if len(got) != len(rec) {
				t.Fatalf("record %d: length %d, want %d", consumed, len(got), len(rec))
			}
			if int(binary.LittleEndian.Uint32(got)) != consumed {
				t.Fatalf("record order broken at %d: got seq %d", consumed, binary.LittleEndian.Uint32(got))
			}
			want := make([]byte, len(rec)-4)
			fillPattern(want, byte(consumed))
			if !bytes.Equal(got[4:], want) {
				t.Fatalf("record %d payload corrupted across wrap", consumed)
			}
			r.Advance()
			consumed++
		}
	}
	if consumed < 100 {
		t.Fatalf("only %d records crossed the ring", consumed)
	}
}

func TestRingRejectsOversizedRecord(t *testing.T) {
	r := newTestRing(t, 1024)
	if _, ok := r.Reserve(r.Cap()/2 + 1); ok {
		t.Fatal("Reserve above cap/2 should fail")
	}
	if r.Write(make([]byte, r.Cap())) {
		t.Fatal("oversized Write should fail")
	}
}

func TestRingFullThenDrain(t *testing.T) {
	r := newTestRing(t, 1024)
	n := 0
	for r.Write(make([]byte, 100)) {
		n++
	}
	if n == 0 {
		t.Fatal("ring accepted nothing")
	}
	// Full: the next write must fail, not overwrite.
	if r.Write(make([]byte, 100)) {
		t.Fatal("write into full ring succeeded")
	}
	for i := 0; i < n; i++ {
		if _, ok := r.Next(); !ok {
			t.Fatalf("record %d missing", i)
		}
		r.Advance()
	}
	// Space is back.
	if !r.Write(make([]byte, 100)) {
		t.Fatal("write after drain failed")
	}
}

func TestRingPartialCommit(t *testing.T) {
	r := newTestRing(t, 1024)
	buf, ok := r.Reserve(300)
	if !ok {
		t.Fatal("reserve failed")
	}
	// A partial pack fills fewer bytes than reserved — the record must
	// carry the committed length, not the reservation.
	copy(buf, "short")
	r.Commit(5)
	rec, ok := r.Next()
	if !ok || string(rec) != "short" {
		t.Fatalf("partial commit: got %q, %v", rec, ok)
	}
	r.Advance()
	// An aborted reservation publishes nothing.
	if _, ok := r.Reserve(64); !ok {
		t.Fatal("reserve failed")
	}
	r.Abort()
	if _, ok := r.Next(); ok {
		t.Fatal("aborted reservation became visible")
	}
	if !r.Write([]byte("after")) {
		t.Fatal("write after abort failed")
	}
	if rec, ok := r.Next(); !ok || string(rec) != "after" {
		t.Fatalf("post-abort record: %q, %v", rec, ok)
	}
}

func TestRingZeroLengthRecords(t *testing.T) {
	r := newTestRing(t, 1024)
	for i := 0; i < 3; i++ {
		if !r.Write() {
			t.Fatal("zero-length write failed")
		}
	}
	for i := 0; i < 3; i++ {
		rec, ok := r.Next()
		if !ok || len(rec) != 0 {
			t.Fatalf("zero-length record %d: %v, %v", i, rec, ok)
		}
		r.Advance()
	}
}

func TestRingAttachValidation(t *testing.T) {
	if _, err := AttachRing(make([]byte, 32), true); err == nil {
		t.Fatal("tiny buffer accepted")
	}
	mem := RingMem(4096)
	if _, err := AttachRing(mem, true); err != nil {
		t.Fatal(err)
	}
	// Second side attaches without init and sees the same geometry.
	if _, err := AttachRing(mem, false); err != nil {
		t.Fatal(err)
	}
	// A truncated view fails the capacity cross-check (and the
	// power-of-two check catches most corruptions).
	if _, err := AttachRing(mem[:len(mem)-8], false); err == nil {
		t.Fatal("truncated attach accepted")
	}
}

// TestRingConcurrentSPSC hammers the ring from one producer and one
// consumer goroutine; under -race this validates the happens-before
// edges that make the mmap'd cross-process use sound.
func TestRingConcurrentSPSC(t *testing.T) {
	r := newTestRing(t, 4096)
	const msgs = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := make([]byte, 0, 256)
		for i := 0; i < msgs; i++ {
			rec = rec[:0]
			rec = binary.LittleEndian.AppendUint32(rec, uint32(i))
			rec = append(rec, make([]byte, i%200)...)
			fillPattern(rec[4:], byte(i))
			for !r.Write(rec) {
				// Full: the consumer is behind; spin.
			}
		}
		r.Close()
	}()
	got := 0
	want := make([]byte, 256)
	for {
		rec, ok := r.Next()
		if !ok {
			if r.Closed() && r.Empty() {
				break
			}
			continue
		}
		if int(binary.LittleEndian.Uint32(rec)) != got {
			t.Fatalf("out of order: record %d carries seq %d", got, binary.LittleEndian.Uint32(rec))
		}
		if wantLen := 4 + got%200; len(rec) != wantLen {
			t.Fatalf("record %d: len %d, want %d", got, len(rec), wantLen)
		}
		fillPattern(want[:got%200], byte(got))
		if !bytes.Equal(rec[4:], want[:got%200]) {
			t.Fatalf("record %d corrupted", got)
		}
		r.Advance()
		got++
	}
	wg.Wait()
	if got != msgs {
		t.Fatalf("consumed %d of %d records", got, msgs)
	}
}

// TestRingSkipMarkerSpace exercises the corner where the skip marker's
// span itself is what makes the ring look full.
func TestRingSkipMarkerSpace(t *testing.T) {
	r := newTestRing(t, 1024)
	// Leave the producer near the end of the data area.
	pad := r.Cap() - 64
	step := 120
	for filled := 0; filled+step < pad; filled += step {
		if !r.Write(make([]byte, step-4)) {
			t.Fatal("fill write failed")
		}
		rec, ok := r.Next()
		if !ok || len(rec) != step-4 {
			t.Fatalf("fill read: %d, %v", len(rec), ok)
		}
		r.Advance()
	}
	// Now a record that cannot fit before the end must wrap and still
	// round-trip intact.
	big := make([]byte, 400)
	fillPattern(big, 77)
	if !r.Write(big) {
		t.Fatal("wrapping write failed")
	}
	rec, ok := r.Next()
	if !ok || !bytes.Equal(rec, big) {
		t.Fatalf("wrapped record mismatch (len %d)", len(rec))
	}
	r.Advance()
}
