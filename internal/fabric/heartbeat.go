package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpicd/internal/obs"
)

// This file implements the heartbeat/liveness service: a NIC wrapper
// that tracks per-peer last-seen times (piggybacked on every inbound
// packet, so a busy link never pays an explicit probe) and sends
// ping/pong probes to quiet peers. A peer silent past SuspectAfter is
// suspected; past DeadAfter it is declared dead, permanently, and the
// OnDead callback fires — the transport layer above turns that into
// failure notification for blocked operations.

// DetectorConfig tunes the liveness detector. The zero value disables
// it (Period == 0); NewDetectorConfig fills defaults for enabled ones.
type DetectorConfig struct {
	// Period is the probe cadence: a peer not heard from within one
	// period is pinged every tick. Zero disables the detector.
	Period time.Duration
	// SuspectAfter is the silence after which a peer is suspected
	// (default 4×Period).
	SuspectAfter time.Duration
	// DeadAfter is the silence after which a peer is declared dead
	// (default 10×Period). Death is sticky: a late packet from a
	// declared-dead peer is still delivered but cannot resurrect it —
	// only an explicit Revive (elastic re-admission of a respawned
	// process) returns the rank to the alive state.
	DeadAfter time.Duration
	// BootGrace, when positive, pushes every peer's initial last-seen
	// stamp that far into the future: silence at boot does not count
	// against peers until the grace expires or they send their first
	// packet (which resumes normal accounting). Static worlds want the
	// default (zero) — a peer that never starts must still be declared
	// dead from boot silence. A respawned elastic joiner wants a generous
	// grace: the survivors it must rejoin will not talk to it until its
	// join request is noticed and an invite issued, and boot-silence
	// verdicts before that point put the joiner and the survivors in a
	// mutual-death deadlock (the joiner declares everyone dead and goes
	// mute; the survivors' re-admission grace then expires waiting for a
	// peer that will never speak first).
	BootGrace time.Duration
	// Obs, when non-nil, receives hb.r<rank>.peers_suspected and
	// hb.r<rank>.peers_dead gauges plus an hb.r<rank>.rtt_ns histogram
	// of probe round-trip times.
	Obs *obs.Registry
}

// NewDetectorConfig returns cfg with zero thresholds defaulted.
func NewDetectorConfig(cfg DetectorConfig) DetectorConfig {
	if cfg.Period <= 0 {
		return cfg
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 4 * cfg.Period
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 10 * cfg.Period
	}
	if cfg.DeadAfter < cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter
	}
	return cfg
}

// Peer liveness states.
const (
	peerAlive int32 = iota
	peerSuspect
	peerDead
)

// Detector wraps a NIC with the heartbeat service. All NIC methods pass
// through; Recv additionally consumes heartbeat packets (answering
// pings, timing pongs) and refreshes the sender's last-seen stamp with
// one atomic store — no allocation, no lock — so detection costs the
// data path almost nothing.
type Detector struct {
	inner NIC
	cfg   DetectorConfig

	lastSeen []atomic.Int64 // per-peer last inbound activity, ns (coarse)
	state    []atomic.Int32 // peerAlive / peerSuspect / peerDead
	probing  []atomic.Bool  // per-peer probe send in flight

	// coarse is a Period-granularity clock refreshed by the prober tick.
	// The data path stamps lastSeen from it instead of calling time.Now
	// per packet — a liveness stamp may therefore read up to one Period
	// old, which the SuspectAfter/DeadAfter thresholds (multiples of
	// Period) absorb. Probe RTTs still use the real clock; pongs are rare.
	coarse atomic.Int64

	nSuspect atomic.Int64
	nDead    atomic.Int64
	rtt      *obs.Histogram // nil when Obs is nil

	onDead func(rank int) // set before Start

	startOnce sync.Once
	closeOnce sync.Once
	quit      chan struct{}
	wg        sync.WaitGroup
}

// NewDetector wraps nic with a detector. cfg.Period must be > 0. The
// detector is passive until Start is called; set the OnDead callback
// first.
func NewDetector(nic NIC, cfg DetectorConfig) *Detector {
	cfg = NewDetectorConfig(cfg)
	if cfg.Period <= 0 {
		panic("fabric: NewDetector requires Period > 0")
	}
	d := &Detector{
		inner:    nic,
		cfg:      cfg,
		lastSeen: make([]atomic.Int64, nic.Size()),
		state:    make([]atomic.Int32, nic.Size()),
		probing:  make([]atomic.Bool, nic.Size()),
		quit:     make(chan struct{}),
	}
	now := time.Now().UnixNano()
	d.coarse.Store(now)
	boot := now + cfg.BootGrace.Nanoseconds()
	for i := range d.lastSeen {
		d.lastSeen[i].Store(boot)
	}
	if cfg.Obs != nil {
		p := func(name string) string { return fmt.Sprintf("hb.r%d.%s", nic.Rank(), name) }
		cfg.Obs.GaugeFunc(p("peers_suspected"), d.nSuspect.Load)
		cfg.Obs.GaugeFunc(p("peers_dead"), d.nDead.Load)
		d.rtt = cfg.Obs.Histogram(p("rtt_ns"))
	}
	return d
}

// OnDead registers the death callback, invoked exactly once per peer
// from the prober goroutine when the peer crosses DeadAfter. It must be
// set before Start and must not block for long.
func (d *Detector) OnDead(fn func(rank int)) { d.onDead = fn }

// Start launches the prober goroutine. Idempotent. If the inner NIC
// reports link-level peer-death evidence (byte-stream providers in
// launched worlds), it is wired into the state machine here — after
// OnDead is set, so a hard verdict arriving immediately still reaches
// the callback: a broken established link raises suspicion, a refused
// redial to a previously-connected peer declares death outright. This is
// what keeps cross-process detection from waiting out the full silence
// thresholds (or a sender's whole retransmit budget) when the peer's
// process is demonstrably gone.
func (d *Detector) Start() {
	d.startOnce.Do(func() {
		if h, ok := d.inner.(interface{ SetPeerDownHook(func(int, bool)) }); ok {
			h.SetPeerDownHook(func(rank int, hard bool) {
				if hard {
					d.DeclareDead(rank)
				} else {
					d.Suspect(rank)
				}
			})
		}
		d.wg.Add(1)
		go d.probeLoop()
	})
}

// Suspect raises suspicion on rank as if its silence had crossed
// SuspectAfter (used for link-level hints: an established connection
// breaking). It does not touch the last-seen stamp — escalation to dead
// still requires real silence, and any inbound packet clears the
// suspicion. No effect on a dead peer.
func (d *Detector) Suspect(rank int) {
	if rank < 0 || rank >= len(d.state) || rank == d.inner.Rank() {
		return
	}
	if d.state[rank].CompareAndSwap(peerAlive, peerSuspect) {
		d.nSuspect.Add(1)
	}
}

// Revive returns rank to the alive state, lifting the permanent-death
// rule for elastic re-admission: the caller asserts a fresh process is
// being (re)started under this rank. The last-seen stamp is pushed into
// the future by a boot grace so the replacement is not re-declared dead
// while it is still starting up; the first packet it sends resumes
// normal accounting. After Revive the OnDead callback can fire again for
// this rank.
func (d *Detector) Revive(rank int) {
	if rank < 0 || rank >= len(d.state) || rank == d.inner.Rank() {
		return
	}
	grace := 2 * d.cfg.DeadAfter
	if grace < 2*time.Second {
		grace = 2 * time.Second
	}
	d.lastSeen[rank].Store(time.Now().Add(grace).UnixNano())
	for {
		s := d.state[rank].Load()
		if s == peerAlive {
			return
		}
		if d.state[rank].CompareAndSwap(s, peerAlive) {
			switch s {
			case peerSuspect:
				d.nSuspect.Add(-1)
			case peerDead:
				d.nDead.Add(-1)
			}
			return
		}
	}
}

// ReviveRank composes detector-state revival with the inner provider's
// connection-state revival, so transport layers holding the detector as
// their NIC reset both with one call.
func (d *Detector) ReviveRank(rank int) {
	d.Revive(rank)
	if rr, ok := d.inner.(interface{ ReviveRank(int) }); ok {
		rr.ReviveRank(rank)
	}
}

// DeclareRankDown forwards an out-of-band death verdict to the inner
// provider (the SHM provider stalls the pair's rings) in addition to
// the detector's own DeclareDead bookkeeping, which the caller drives
// separately.
func (d *Detector) DeclareRankDown(rank int) {
	if dd, ok := d.inner.(interface{ DeclareRankDown(int) }); ok {
		dd.DeclareRankDown(rank)
	}
}

// UpdateAddr forwards a peer-address update to the inner provider (a
// respawned TCP rank listens on a fresh port).
func (d *Detector) UpdateAddr(rank int, addr string) error {
	if up, ok := d.inner.(interface{ UpdateAddr(int, string) error }); ok {
		return up.UpdateAddr(rank, addr)
	}
	return fmt.Errorf("fabric: %T does not support address updates", d.inner)
}

// DeadAfter reports the configured silence threshold after which a peer
// is declared dead — the upper bound on how long a death verdict can
// lag the failure. Layers that see a low-level link error and want the
// detector's verdict instead (ULFM error classification) wait at most
// this long plus slack.
func (d *Detector) DeadAfter() time.Duration { return d.cfg.DeadAfter }

// PeerDead reports whether the detector has declared rank dead.
func (d *Detector) PeerDead(rank int) bool {
	return rank >= 0 && rank < len(d.state) && d.state[rank].Load() == peerDead
}

// PeerSuspected reports whether rank is currently suspected.
func (d *Detector) PeerSuspected(rank int) bool {
	return rank >= 0 && rank < len(d.state) && d.state[rank].Load() == peerSuspect
}

// DeclareDead force-declares rank dead, as if its silence had crossed
// DeadAfter. Used when a lower layer learns of the death directly (e.g.
// a Get returning ErrRankDead) so the callback machinery runs the same
// path. Idempotent; never fires for the local rank.
func (d *Detector) DeclareDead(rank int) {
	if rank < 0 || rank >= len(d.state) || rank == d.inner.Rank() {
		return
	}
	d.declareDead(rank)
}

func (d *Detector) declareDead(rank int) {
	for {
		s := d.state[rank].Load()
		if s == peerDead {
			return
		}
		if d.state[rank].CompareAndSwap(s, peerDead) {
			if s == peerSuspect {
				d.nSuspect.Add(-1)
			}
			d.nDead.Add(1)
			if d.onDead != nil {
				d.onDead(rank)
			}
			return
		}
	}
}

// observe refreshes rank's last-seen stamp on any inbound activity and
// clears a suspicion. Death is sticky.
func (d *Detector) observe(rank int, now int64) {
	if rank < 0 || rank >= len(d.lastSeen) {
		return
	}
	d.lastSeen[rank].Store(now)
	if d.state[rank].Load() == peerSuspect &&
		d.state[rank].CompareAndSwap(peerSuspect, peerAlive) {
		d.nSuspect.Add(-1)
	}
}

// probeLoop pings quiet peers each period and advances their liveness
// state machines.
func (d *Detector) probeLoop() {
	defer d.wg.Done()
	tick := time.NewTicker(d.cfg.Period)
	defer tick.Stop()
	self := d.inner.Rank()
	for {
		select {
		case <-d.quit:
			return
		case <-tick.C:
		}
		now := time.Now().UnixNano()
		d.coarse.Store(now)
		for p := range d.lastSeen {
			if p == self || d.state[p].Load() == peerDead {
				continue
			}
			silent := time.Duration(now - d.lastSeen[p].Load())
			switch {
			case silent >= d.cfg.DeadAfter:
				d.declareDead(p)
				continue
			case silent >= d.cfg.SuspectAfter:
				if d.state[p].CompareAndSwap(peerAlive, peerSuspect) {
					d.nSuspect.Add(1)
				}
			}
			if silent >= d.cfg.Period && d.probing[p].CompareAndSwap(false, true) {
				// Quiet link: probe, off the prober goroutine — a probe
				// toward a down or booting peer can block in connection
				// establishment for the full dial timeout, and the state
				// machine must keep ticking for every other peer
				// meanwhile. One probe in flight per peer. Errors are
				// silence, which is what the state machine measures.
				go func(p int, now int64) {
					defer d.probing[p].Store(false)
					_ = d.inner.Send(p, Header{Kind: KindHeartbeatPing, Aux0: now})
				}(p, now)
			}
		}
	}
}

// Rank implements NIC.
func (d *Detector) Rank() int { return d.inner.Rank() }

// Size implements NIC.
func (d *Detector) Size() int { return d.inner.Size() }

// Send implements NIC (pass-through).
func (d *Detector) Send(to int, hdr Header, payload ...[]byte) error {
	return d.inner.Send(to, hdr, payload...)
}

// SendFrom implements NIC (pass-through).
func (d *Detector) SendFrom(to int, hdr Header, src Source, off, n int64) (int64, error) {
	return d.inner.SendFrom(to, hdr, src, off, n)
}

// Recv implements NIC: heartbeat packets are consumed here (never
// surfaced to the transport) and every inbound packet refreshes its
// sender's last-seen stamp.
func (d *Detector) Recv() (*Packet, bool) {
	for {
		pkt, ok := d.inner.Recv()
		if !ok {
			return nil, false
		}
		d.observe(pkt.From, d.coarse.Load())
		switch pkt.Hdr.Kind {
		case KindHeartbeatPing:
			from := pkt.From
			stamp := pkt.Hdr.Aux0
			pkt.Release()
			_ = d.inner.Send(from, Header{Kind: KindHeartbeatPong, Aux0: stamp})
		case KindHeartbeatPong:
			if d.rtt != nil && pkt.Hdr.Aux0 > 0 {
				d.rtt.Observe(time.Now().UnixNano() - pkt.Hdr.Aux0)
			}
			pkt.Release()
		default:
			return pkt, true
		}
	}
}

// Register implements NIC (pass-through).
func (d *Detector) Register(src Source) uint64 { return d.inner.Register(src) }

// Deregister implements NIC (pass-through).
func (d *Detector) Deregister(key uint64) { d.inner.Deregister(key) }

// Get implements NIC (pass-through).
func (d *Detector) Get(from int, key uint64, off int64, sink Sink, sinkOff, n int64) error {
	return d.inner.Get(from, key, off, sink, sinkOff, n)
}

// Close stops the prober and closes the inner NIC, which unblocks Recv.
func (d *Detector) Close() error {
	var err error
	d.closeOnce.Do(func() {
		close(d.quit)
		d.wg.Wait()
		err = d.inner.Close()
	})
	return err
}
