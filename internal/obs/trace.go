package obs

import (
	"io"
	"sync"
)

// EventKind identifies one step of a message lifecycle.
type EventKind uint8

// Message lifecycle steps, in the order a message typically visits them:
// a receive is posted (EvPost) or a send starts (EvSend, Arg = chosen
// protocol), the message matches a receive (EvMatch, Arg = 1 for a posted
// hit / 0 for an unexpected hit), a rendezvous pull fans out (EvStripes,
// Arg = segment count), the janitor resends (EvRexmit, Arg = attempt),
// and the request completes (EvComplete, Arg = 0 ok / 1 failed) or times
// out (EvTimeout).
const (
	EvPost EventKind = 1 + iota
	EvSend
	EvMatch
	EvStripes
	EvRexmit
	EvComplete
	EvTimeout
)

func (k EventKind) String() string {
	switch k {
	case EvPost:
		return "post"
	case EvSend:
		return "send"
	case EvMatch:
		return "match"
	case EvStripes:
		return "stripes"
	case EvRexmit:
		return "rexmit"
	case EvComplete:
		return "complete"
	case EvTimeout:
		return "timeout"
	}
	return "unknown"
}

// MarshalJSON emits the kind's name so trace dumps read without a legend.
// Only the dump path pays for this — recording stores the raw byte.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the name form produced by MarshalJSON.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	for c := EvPost; c <= EvTimeout; c++ {
		if string(b) == `"`+c.String()+`"` {
			*k = c
			return nil
		}
	}
	*k = 0
	return nil
}

// Event is one fixed-size trace record. Fields are value types only, so
// recording an event is a struct copy into the preallocated ring — no
// heap allocation.
type Event struct {
	Nanos int64     `json:"ns"`   // wall-clock nanoseconds (time.Now().UnixNano())
	Kind  EventKind `json:"kind"` // lifecycle step
	Rank  int32     `json:"rank"` // observing rank
	Peer  int32     `json:"peer"` // remote rank (-1 when unknown)
	MsgID uint64    `json:"msg"`  // transport message id (0 when not yet assigned)
	Tag   uint64    `json:"tag"`  // transport matching tag
	Size  int64     `json:"size"` // message payload bytes
	Arg   int64     `json:"arg"`  // kind-specific detail (see EventKind docs)
}

// Ring is a bounded in-memory trace buffer: the last cap(events) records
// survive, older ones are overwritten. A mutex (not atomics) guards the
// slots so snapshots never observe torn events under the race detector;
// the critical section is one struct copy and Record never allocates.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total records ever written; next%len(buf) is the write slot
}

// NewRing returns a ring holding the most recent capacity events
// (rounded up to a power of two, minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Record appends one event, overwriting the oldest when full. Safe to
// call on a nil ring (tracing disabled).
func (r *Ring) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next&uint64(len(r.buf)-1)] = ev
	r.next++
	r.mu.Unlock()
}

// Len returns how many events are currently held (at most the capacity).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Dropped returns how many events were overwritten before they could be
// read.
func (r *Ring) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(len(r.buf)) {
		return 0
	}
	return int64(r.next - uint64(len(r.buf)))
}

// Events returns the held events oldest-first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	count := r.next
	if r.next > n {
		start = r.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for i := start; i < r.next; i++ {
		out = append(out, r.buf[i&(n-1)])
	}
	return out
}

// WriteJSON dumps the held events oldest-first as indented JSON.
func (r *Ring) WriteJSON(w io.Writer) error {
	return writeSortedJSON(w, r.Events())
}
