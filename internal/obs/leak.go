package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Leak checking: a snapshot-diff API for goroutines and checked-out pool
// buffers. The soak harness and the fault/ULFM test suites take a
// LeakSnapshot before bringing a world up and Check it after tear-down —
// a reliability contract that the recovery machinery (revoke listeners,
// collective goroutines, failure notification) actually releases
// everything it grabs, even on the paths where a rank died mid-protocol.
//
// Goroutine leaks are detected by count with a settle loop (completion
// notification is asynchronous: a schedule goroutine may still be
// unwinding when Check is called) and reported with the live stack dump
// filtered to goroutines created since the snapshot's baseline, so a
// failure names the leaked frames instead of just a number.
//
// Pool leaks use the same shape over opaque gauges: any monotonic
// outstanding counter (fabric wire buffers, region scratch) can be
// registered and must return to its snapshot level.

// LeakSnapshot is a point-in-time baseline to diff against.
type LeakSnapshot struct {
	goroutines int
	gauges     map[string]int64
	taken      time.Time
}

// LeakGauge is one named outstanding-count reading for leak checks.
type LeakGauge struct {
	Name string
	Fn   func() int64
}

// TakeLeakSnapshot records the current goroutine count and the level of
// every supplied gauge.
func TakeLeakSnapshot(gauges ...LeakGauge) LeakSnapshot {
	s := LeakSnapshot{
		goroutines: runtime.NumGoroutine(),
		gauges:     make(map[string]int64, len(gauges)),
		taken:      time.Now(),
	}
	for _, g := range gauges {
		s.gauges[g.Name] = g.Fn()
	}
	return s
}

// Goroutines returns the goroutine count at snapshot time.
func (s LeakSnapshot) Goroutines() int { return s.goroutines }

// DefaultLeakSettle bounds how long Check waits for transient goroutines
// (completion notifications, unwinding schedules, closing pollers) to
// exit before declaring a leak.
const DefaultLeakSettle = 5 * time.Second

// Check diffs the current state against the snapshot, polling until
// everything returns to baseline or settle elapses (settle <= 0 selects
// DefaultLeakSettle). It returns nil when the goroutine count is back at
// or below the baseline and every gauge is back at or below its recorded
// level; otherwise an error naming the leak — including a stack dump of
// the surviving goroutines for goroutine leaks.
func (s LeakSnapshot) Check(settle time.Duration, gauges ...LeakGauge) error {
	if settle <= 0 {
		settle = DefaultLeakSettle
	}
	deadline := time.Now().Add(settle)
	for {
		leaked := runtime.NumGoroutine() - s.goroutines
		var dirty []string
		for _, g := range gauges {
			base := s.gauges[g.Name]
			if now := g.Fn(); now > base {
				dirty = append(dirty, fmt.Sprintf("%s: %d outstanding (baseline %d)", g.Name, now, base))
			}
		}
		if leaked <= 0 && len(dirty) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			sort.Strings(dirty)
			var b strings.Builder
			fmt.Fprintf(&b, "obs: leak check failed after %v:", settle)
			if leaked > 0 {
				fmt.Fprintf(&b, " %d leaked goroutines (%d now, %d at snapshot)", leaked, runtime.NumGoroutine(), s.goroutines)
			}
			for _, d := range dirty {
				b.WriteString("; " + d)
			}
			if leaked > 0 {
				b.WriteString("\n" + goroutineDump())
			}
			return fmt.Errorf("%s", b.String())
		}
		// GC between polls: sync.Pool recycling and finalizer-driven
		// cleanup can hold gauge levels up for one collection cycle.
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// goroutineDump returns the full goroutine stack dump, truncated to a
// bounded size so a massive leak cannot flood test logs.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	const maxDump = 64 * 1024
	if n > maxDump {
		return string(buf[:maxDump]) + "\n... (dump truncated)"
	}
	return string(buf[:n])
}
