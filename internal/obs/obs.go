// Package obs is the stack's observability layer: a metrics registry
// (counters, gauges, power-of-two histograms) and a bounded per-message
// trace ring, all designed to cost nothing when disabled and to allocate
// nothing on the hot path when enabled.
//
// The design follows the UCX_STATS model: every layer (fabric, transport,
// core, facade) registers its counters under a dotted name; a single
// Registry snapshot accounts for every message by protocol. Disabled mode
// is a nil *Observer — call sites guard with one pointer check, so the
// eager path's allocation count and latency are unchanged (pinned by
// TestEagerSmallMessageAllocsPinned and BenchmarkAblationObs).
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; Add and Load are safe for concurrent use and never
// allocate.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value sampled at snapshot time. Gauges are
// registered as functions so queue depths and pool sizes are read live
// rather than double-counted.
type Gauge func() int64

// Registry is a named collection of metrics. Registration (setup path)
// takes a lock and may allocate; reads of registered counters and
// histogram observations are lock-free.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Safe for concurrent use; intended for setup, not per-message calls
// (hold the returned pointer instead).
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// GaugeFunc registers fn as the live value of name, replacing any
// previous registration.
func (r *Registry) GaugeFunc(name string, fn Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, suitable
// for JSON encoding.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot samples every metric. Gauge functions run under the registry
// lock; they must not call back into the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Load()
	}
	for name, fn := range r.gauges {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON with sorted
// keys (expvar-style, but deterministic for tests and diffing).
func (r *Registry) WriteJSON(w io.Writer) error {
	return writeSortedJSON(w, r.Snapshot())
}

// writeSortedJSON encodes v with encoding/json (which sorts map keys) and
// indents it.
func writeSortedJSON(w io.Writer, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}

// Names returns every registered metric name, sorted, primarily for
// tests and discovery.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counts)+len(r.gauges)+len(r.hists))
	for n := range r.counts {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Observer bundles the two observability facilities a layer may be
// handed: the shared metrics registry and an optional trace ring. A nil
// *Observer means observability is disabled; call sites guard with a
// single pointer check and the hot path stays allocation-free.
type Observer struct {
	Registry *Registry
	Trace    *Ring
}

// New returns an Observer with a fresh registry. traceCap > 0 attaches a
// trace ring holding the last traceCap events (rounded up to a power of
// two); traceCap == 0 disables tracing but keeps metrics.
func New(traceCap int) *Observer {
	o := &Observer{Registry: NewRegistry()}
	if traceCap > 0 {
		o.Trace = NewRing(traceCap)
	}
	return o
}

// WriteJSON dumps the registry and, when tracing is enabled, the trace
// ring as one JSON document.
func (o *Observer) WriteJSON(w io.Writer) error {
	if o == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	doc := struct {
		Metrics Snapshot `json:"metrics"`
		Trace   []Event  `json:"trace,omitempty"`
	}{Metrics: o.Registry.Snapshot()}
	if o.Trace != nil {
		doc.Trace = o.Trace.Events()
	}
	return writeSortedJSON(w, doc)
}

// String renders the JSON dump (diagnostics convenience).
func (o *Observer) String() string {
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		return fmt.Sprintf("obs: %v", err)
	}
	return buf.String()
}
