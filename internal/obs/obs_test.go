package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterAndRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Add(3)
	c.Add(4)
	if got := r.Counter("a.b").Load(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	r.GaugeFunc("a.depth", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["a.b"] != 7 || s.Gauges["a.depth"] != 42 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, 1 << 40, math.MaxInt64} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Snapshot()
	var n int64
	for _, b := range s.Buckets {
		n += b.N
	}
	if n != 8 {
		t.Fatalf("bucket total = %d, want 8", n)
	}
	// Power-of-two edges: v=3 lands in (2,4], i.e. Le=4.
	if got := bucketUpper(bucketOf(3)); got != 4 {
		t.Fatalf("bucket edge for 3 = %d, want 4", got)
	}
	if bucketOf(math.MaxInt64) != NumBuckets-1 {
		t.Fatalf("MaxInt64 bucket = %d", bucketOf(math.MaxInt64))
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	p50 := h.Quantile(0.5)
	// True median 500; bucket estimate must bound it within a factor of 2.
	if p50 < 500 || p50 > 1024 {
		t.Fatalf("p50 = %d", p50)
	}
	if h.Quantile(0) <= 0 || h.Quantile(1) < p50 {
		t.Fatalf("quantile ordering broken: q0=%d q1=%d", h.Quantile(0), h.Quantile(1))
	}
}

func TestRingWrapAndOrder(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Record(Event{Nanos: int64(i), Kind: EvSend})
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("len = %d, want 16", len(evs))
	}
	if r.Dropped() != 24 {
		t.Fatalf("dropped = %d, want 24", r.Dropped())
	}
	for i, ev := range evs {
		if ev.Nanos != int64(24+i) {
			t.Fatalf("event %d has nanos %d, want %d (oldest-first)", i, ev.Nanos, 24+i)
		}
	}
}

func TestNilRingAndNilObserver(t *testing.T) {
	var r *Ring
	r.Record(Event{}) // must not panic
	if r.Len() != 0 || r.Events() != nil || r.Dropped() != 0 {
		t.Fatal("nil ring should be inert")
	}
	var o *Observer
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestObserverJSONRoundTrip(t *testing.T) {
	o := New(32)
	o.Registry.Counter("ucp.r0.eager_sends").Add(5)
	o.Registry.Histogram("ucp.r0.msg_complete_ns").Observe(1500)
	o.Trace.Record(Event{Nanos: 1, Kind: EvPost, Rank: 0, Peer: 1})
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics Snapshot `json:"metrics"`
		Trace   []Event  `json:"trace"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Metrics.Counters["ucp.r0.eager_sends"] != 5 {
		t.Fatalf("counter lost in round trip: %+v", doc.Metrics)
	}
	if len(doc.Trace) != 1 || doc.Trace[0].Kind != EvPost {
		t.Fatalf("trace lost in round trip: %+v", doc.Trace)
	}
}

// TestHotPathAllocationFree pins the zero-allocation claim for every
// hot-path operation: counter adds, histogram observations and trace
// records.
func TestHotPathAllocationFree(t *testing.T) {
	var c Counter
	var h Histogram
	r := NewRing(64)
	if avg := testing.AllocsPerRun(1000, func() { c.Add(1) }); avg != 0 {
		t.Fatalf("Counter.Add allocates %.1f/op", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); avg != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { r.Record(Event{Nanos: 1}) }); avg != 0 {
		t.Fatalf("Ring.Record allocates %.1f/op", avg)
	}
}

func TestConcurrentUse(t *testing.T) {
	o := New(256)
	c := o.Registry.Counter("x")
	h := o.Registry.Histogram("y")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(int64(i))
				o.Trace.Record(Event{Nanos: int64(g*1000 + i)})
			}
		}(g)
	}
	// Concurrent snapshots must not race with writers.
	for i := 0; i < 10; i++ {
		_ = o.Registry.Snapshot()
		_ = o.Trace.Events()
	}
	wg.Wait()
	if c.Load() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d", c.Load(), h.Count())
	}
	if o.Trace.Len() != 256 {
		t.Fatalf("ring len = %d", o.Trace.Len())
	}
}
