package obs

import (
	"sync/atomic"
	"time"
)

// Watchdog is a stall detector for sustained-traffic workloads: workers
// call Pet (an atomic add, allocation- and lock-free) on every completed
// unit of progress, and a single background ticker verifies the counter
// advanced within every window. A window with no progress is a stall —
// counted, surfaced through the registry as watchdog.stalls, and
// reported to the optional OnStall hook with the stall duration so a
// soak harness can fail fast instead of burning its wall-clock budget
// hung.
//
// The watchdog deliberately measures end-to-end progress rather than
// any one layer's liveness: a deadlocked collective, a lost wakeup and
// a livelocked retransmit loop all look identical from here — the
// progress counter stops.
type Watchdog struct {
	progress atomic.Int64 // units completed (Pet)
	stalls   atomic.Int64 // windows that saw no progress
	window   time.Duration

	lastSeen int64 // progress value at the previous tick (ticker only)
	stalling bool  // inside a stall episode (ticker only)
	began    time.Time

	onStall func(stalled time.Duration, progress int64)
	stop    chan struct{}
	done    chan struct{}
}

// NewWatchdog builds a watchdog with the given no-progress window.
// window <= 0 defaults to 2s. Call Start to arm it.
func NewWatchdog(window time.Duration, onStall func(stalled time.Duration, progress int64)) *Watchdog {
	if window <= 0 {
		window = 2 * time.Second
	}
	return &Watchdog{
		window:  window,
		onStall: onStall,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Pet records one unit of completed progress. Safe for concurrent use;
// never allocates.
func (w *Watchdog) Pet() { w.progress.Add(1) }

// PetN records n units of completed progress.
func (w *Watchdog) PetN(n int64) { w.progress.Add(n) }

// Progress returns the cumulative progress count.
func (w *Watchdog) Progress() int64 { return w.progress.Load() }

// Stalls returns how many windows elapsed with no progress.
func (w *Watchdog) Stalls() int64 { return w.stalls.Load() }

// Register exposes the watchdog's counters on a registry as
// watchdog.progress and watchdog.stalls gauges.
func (w *Watchdog) Register(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("watchdog.progress", w.progress.Load)
	reg.GaugeFunc("watchdog.stalls", w.stalls.Load)
}

// Start arms the watchdog: from now until Stop, every window in which
// the progress counter does not advance counts as a stall.
func (w *Watchdog) Start() {
	w.lastSeen = w.progress.Load()
	go w.run()
}

// Stop disarms the watchdog and waits for its ticker goroutine to exit
// (so leak checks see it gone). Idempotent is not required — call once.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Watchdog) run() {
	defer close(w.done)
	t := time.NewTicker(w.window)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			now := w.progress.Load()
			if now != w.lastSeen {
				w.lastSeen = now
				w.stalling = false
				continue
			}
			w.stalls.Add(1)
			if !w.stalling {
				w.stalling = true
				w.began = time.Now().Add(-w.window)
			}
			if w.onStall != nil {
				w.onStall(time.Since(w.began), now)
			}
		}
	}
}
