package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the histogram bucket count: bucket i counts values v with
// 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0 and v == 1 lands in bucket
// 1), so the full int64 range is covered without configuration. Sizes in
// bytes and latencies in nanoseconds both fit naturally.
const NumBuckets = 64

// Histogram is a fixed-shape power-of-two histogram. Observe is lock-free
// and allocation-free; the zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // v in [2^(b-1), 2^b)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// exclusive upper edge of the bucket holding the q-th observation. The
// estimate is within a factor of two of the true value, which is enough
// to spot latency cliffs.
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < NumBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(NumBuckets - 1)
}

// bucketUpper returns the exclusive upper edge of bucket i.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << i
}

// HistBucket is one non-empty histogram bucket in a snapshot.
type HistBucket struct {
	// Le is the exclusive upper bound of the bucket (0 for the <=0
	// bucket).
	Le int64 `json:"le"`
	// N is the number of observations in the bucket.
	N int64 `json:"n"`
}

// HistSnapshot is a point-in-time histogram copy. Only non-empty buckets
// are materialized, so idle histograms encode compactly.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	P50     int64        `json:"p50"`
	P99     int64        `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Concurrent observations may land between
// field reads; totals are eventually consistent, never torn.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < NumBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: bucketUpper(i), N: n})
		}
	}
	return s
}
