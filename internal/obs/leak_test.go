package obs

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestLeakCheckClean: a snapshot over a quiet process passes.
func TestLeakCheckClean(t *testing.T) {
	var outstanding atomic.Int64
	g := LeakGauge{Name: "test.pool", Fn: outstanding.Load}
	s := TakeLeakSnapshot(g)
	if err := s.Check(time.Second, g); err != nil {
		t.Fatalf("clean check failed: %v", err)
	}
}

// TestLeakCheckSettles: goroutines that exit within the settle window are
// not leaks — the check must poll, not sample once.
func TestLeakCheckSettles(t *testing.T) {
	s := TakeLeakSnapshot()
	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() { <-release }()
	}
	time.AfterFunc(50*time.Millisecond, func() { close(release) })
	if err := s.Check(2 * time.Second); err != nil {
		t.Fatalf("check did not wait for transient goroutines: %v", err)
	}
}

// TestLeakCheckCatchesGoroutine: a goroutine that never exits trips the
// check, and the error carries a stack dump naming it.
func TestLeakCheckCatchesGoroutine(t *testing.T) {
	s := TakeLeakSnapshot()
	block := make(chan struct{})
	defer close(block)
	for i := 0; i < 3; i++ {
		go leakyStackFrameForTest(block)
	}
	err := s.Check(200 * time.Millisecond)
	if err == nil {
		t.Fatal("leaked goroutines passed the check")
	}
	if !strings.Contains(err.Error(), "leakyStackFrameForTest") {
		t.Fatalf("leak error does not name the leaked frame:\n%v", err)
	}
}

func leakyStackFrameForTest(block chan struct{}) { <-block }

// TestLeakCheckCatchesPoolGauge: an outstanding counter above its
// baseline trips the check and is named in the error.
func TestLeakCheckCatchesPoolGauge(t *testing.T) {
	var outstanding atomic.Int64
	g := LeakGauge{Name: "fabric.pool_outstanding", Fn: outstanding.Load}
	s := TakeLeakSnapshot(g)
	outstanding.Add(2)
	err := s.Check(100*time.Millisecond, g)
	if err == nil {
		t.Fatal("outstanding pool buffers passed the check")
	}
	if !strings.Contains(err.Error(), "fabric.pool_outstanding") {
		t.Fatalf("leak error does not name the gauge: %v", err)
	}
	// Returning the buffers clears the condition.
	outstanding.Add(-2)
	if err := s.Check(time.Second, g); err != nil {
		t.Fatalf("check failed after gauge returned to baseline: %v", err)
	}
}

// TestWatchdogNoStallWithProgress: a petted watchdog records no stalls.
func TestWatchdogNoStallWithProgress(t *testing.T) {
	w := NewWatchdog(20*time.Millisecond, nil)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				w.Pet()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	w.Start()
	time.Sleep(150 * time.Millisecond)
	w.Stop()
	close(stop)
	if s := w.Stalls(); s != 0 {
		t.Fatalf("watchdog counted %d stalls under steady progress", s)
	}
	if w.Progress() == 0 {
		t.Fatal("watchdog recorded no progress")
	}
}

// TestWatchdogCatchesStall: with progress stopped, stall windows
// accumulate and the OnStall hook fires with a growing duration.
func TestWatchdogCatchesStall(t *testing.T) {
	var hookCalls atomic.Int64
	w := NewWatchdog(10*time.Millisecond, func(d time.Duration, _ int64) {
		if d <= 0 {
			t.Errorf("stall duration %v not positive", d)
		}
		hookCalls.Add(1)
	})
	w.Start()
	time.Sleep(120 * time.Millisecond)
	w.Stop()
	if w.Stalls() == 0 {
		t.Fatal("watchdog saw no stall with progress frozen")
	}
	if hookCalls.Load() == 0 {
		t.Fatal("OnStall hook never fired")
	}
}

// TestWatchdogRegister: counters surface as registry gauges.
func TestWatchdogRegister(t *testing.T) {
	reg := NewRegistry()
	w := NewWatchdog(time.Hour, nil)
	w.Register(reg)
	w.PetN(7)
	s := reg.Snapshot()
	if s.Gauges["watchdog.progress"] != 7 {
		t.Fatalf("watchdog.progress = %d, want 7", s.Gauges["watchdog.progress"])
	}
	if s.Gauges["watchdog.stalls"] != 0 {
		t.Fatalf("watchdog.stalls = %d, want 0", s.Gauges["watchdog.stalls"])
	}
}
