package layout

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundtrips(t *testing.T) {
	b := make([]byte, 64)
	PutI32(b, 0, -123456789)
	if I32(b, 0) != -123456789 {
		t.Fatal("int32 roundtrip")
	}
	PutI64(b, 8, math.MinInt64)
	if I64(b, 8) != math.MinInt64 {
		t.Fatal("int64 roundtrip")
	}
	PutF64(b, 16, -math.Pi)
	if F64(b, 16) != -math.Pi {
		t.Fatal("float64 roundtrip")
	}
	PutF32(b, 24, 2.5)
	if F32(b, 24) != 2.5 {
		t.Fatal("float32 roundtrip")
	}
}

func TestLittleEndianLayout(t *testing.T) {
	b := make([]byte, 4)
	PutI32(b, 0, 0x01020304)
	if b[0] != 4 || b[1] != 3 || b[2] != 2 || b[3] != 1 {
		t.Fatalf("not little-endian: % x", b)
	}
}

func TestUnalignedOffsets(t *testing.T) {
	// C-layout images address fields at arbitrary byte offsets.
	b := make([]byte, 32)
	PutF64(b, 3, 42.25)
	if F64(b, 3) != 42.25 {
		t.Fatal("unaligned float64")
	}
	PutI32(b, 13, 7)
	if I32(b, 13) != 7 {
		t.Fatal("unaligned int32")
	}
}

func TestSliceImageRoundtrips(t *testing.T) {
	f := []float64{0, -1.5, math.Inf(1), math.SmallestNonzeroFloat64}
	img := Float64Image(f)
	if len(img) != 32 {
		t.Fatalf("image len = %d", len(img))
	}
	got := Float64s(img)
	for i := range f {
		if got[i] != f[i] {
			t.Fatalf("float64s[%d] = %v", i, got[i])
		}
	}
	is := []int32{1, -2, math.MaxInt32, math.MinInt32}
	if got := Int32s(Int32Image(is)); len(got) != 4 || got[3] != math.MinInt32 {
		t.Fatalf("int32s = %v", got)
	}
}

func TestRoundtripProperty(t *testing.T) {
	check := func(v int64, f float64, off uint8) bool {
		b := make([]byte, 300)
		o := int(off)
		PutI64(b, o, v)
		if I64(b, o) != v {
			return false
		}
		PutF64(b, o+8, f)
		return math.IsNaN(f) && math.IsNaN(F64(b, o+8)) || F64(b, o+8) == f
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
