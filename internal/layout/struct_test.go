package layout

import (
	"bytes"
	"strings"
	"testing"

	"mpicd/internal/ddt"
)

// TestStructOf: a C struct {int32 a[3]; /* pad */ double b;} of sizeof
// 24 must canonicalize to the same run list — and, through the plan
// cache, the very same compiled plan — as the hand-built ddt.Struct.
func TestStructOf(t *testing.T) {
	s, err := StructOf(24,
		Field{Off: 0, Type: ddt.Int32, Count: 3},
		Field{Off: 16, Type: ddt.Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 20 || s.Extent() != 24 {
		t.Fatalf("size %d extent %d, want 20/24", s.Size(), s.Extent())
	}
	manual, err := ddt.Struct([]int{3, 1}, []int64{0, 16}, []*ddt.Type{ddt.Int32, ddt.Float64})
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan().Kind() != ddt.PlanRunList {
		t.Fatalf("plan kind %v, want run list", s.Plan().Kind())
	}
	if s.Plan() != manual.Plan() {
		t.Fatal("StructOf and equivalent ddt.Struct compiled separate plans")
	}

	// Pack two structs: the extent must stride over the trailing padding.
	src := make([]byte, s.Span(2))
	for i := range src {
		src[i] = byte(i + 1)
	}
	dst := make([]byte, s.PackedSize(2))
	if _, err := s.Pack(src, 2, dst); err != nil {
		t.Fatal(err)
	}
	want := append(append(append(append([]byte{}, src[0:12]...), src[16:24]...), src[24:36]...), src[40:48]...)
	if !bytes.Equal(dst, want) {
		t.Fatal("StructOf pack moved wrong bytes")
	}
}

// TestStructOfPadding: sizeof below the last field's end must fail, and
// a field Count of zero defaults to one element.
func TestStructOfPadding(t *testing.T) {
	if _, err := StructOf(10, Field{Off: 8, Type: ddt.Float64}); err == nil {
		t.Fatal("sizeof below field end accepted")
	}
	s, err := StructOf(16, Field{Off: 0, Type: ddt.Int32})
	if err != nil || s.Size() != 4 || s.Extent() != 16 {
		t.Fatalf("defaulted count: %v size %d extent %d", err, s.Size(), s.Extent())
	}
}

// TestStructOfRejectsNegativeFields is the regression for the validation
// gap: Field used to pass a negative Count or Off straight into
// ddt.Struct (only remapping 0 -> 1), surfacing as an opaque constructor
// error at best. StructOf now rejects both with an error naming the
// field and the reason.
func TestStructOfRejectsNegativeFields(t *testing.T) {
	cases := []struct {
		name   string
		size   int64
		fields []Field
		want   string
	}{
		{"negative-count", 24, []Field{{Off: 0, Type: ddt.Int32, Count: -3}}, "field 0 has negative count -3"},
		{"negative-off", 24, []Field{{Off: 0, Type: ddt.Int32}, {Off: -8, Type: ddt.Float64}}, "field 1 has negative offset -8"},
		{"negative-size", -24, []Field{{Off: 0, Type: ddt.Int32}}, "negative struct size -24"},
	}
	for _, tc := range cases {
		s, err := StructOf(tc.size, tc.fields...)
		if err == nil {
			t.Fatalf("%s: accepted invalid field (type %v)", tc.name, s)
		}
		if got := err.Error(); !strings.Contains(got, tc.want) {
			t.Fatalf("%s: error %q does not explain the rejection (%q)", tc.name, got, tc.want)
		}
	}
	// Zero count still defaults to one element (the documented remap).
	if s, err := StructOf(8, Field{Off: 0, Type: ddt.Int32, Count: 0}); err != nil || s.Size() != 4 {
		t.Fatalf("zero count must default to 1: %v", err)
	}
}

// TestRows2D: a 3-row slab of 5-element rows out of an 8-wide float64
// matrix is the canonical strided plan, identical to the equivalent
// ddt.Vector's.
func TestRows2D(t *testing.T) {
	r, err := Rows2D(3, 5, 8, ddt.Float64)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Plan()
	if p.Kind() != ddt.PlanStrided {
		t.Fatalf("plan kind %v, want strided", p.Kind())
	}
	v, err := ddt.Vector(3, 5, 8, ddt.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if p != v.Plan() {
		t.Fatal("Rows2D and equivalent ddt.Vector compiled separate plans")
	}
	// Single row: contiguous fast path.
	one, err := Rows2D(1, 5, 8, ddt.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if one.Plan().Kind() != ddt.PlanContig {
		t.Fatalf("single-row plan kind %v, want contig", one.Plan().Kind())
	}
}
