// Package layout manipulates C-layout byte images: application buffers
// laid out exactly as a C compiler (or Rust's #[repr(C)]) would lay out
// the corresponding structs and arrays, including alignment gaps.
//
// Go cannot expose raw pointers into typed slices without unsafe, so the
// reproduction keeps "application memory" as []byte and reads/writes typed
// fields through these little-endian accessors. The derived-datatype
// engine (package ddt), the manual-pack baselines and the custom-datatype
// handlers all operate on the same images, so every method moves exactly
// the same bytes the paper's Rust/C code moved.
package layout

import (
	"encoding/binary"
	"math"
)

// I32 reads a little-endian int32 at off.
func I32(b []byte, off int) int32 { return int32(binary.LittleEndian.Uint32(b[off:])) }

// PutI32 writes a little-endian int32 at off.
func PutI32(b []byte, off int, v int32) { binary.LittleEndian.PutUint32(b[off:], uint32(v)) }

// I64 reads a little-endian int64 at off.
func I64(b []byte, off int) int64 { return int64(binary.LittleEndian.Uint64(b[off:])) }

// PutI64 writes a little-endian int64 at off.
func PutI64(b []byte, off int, v int64) { binary.LittleEndian.PutUint64(b[off:], uint64(v)) }

// F64 reads a little-endian float64 at off.
func F64(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

// PutF64 writes a little-endian float64 at off.
func PutF64(b []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
}

// F32 reads a little-endian float32 at off.
func F32(b []byte, off int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
}

// PutF32 writes a little-endian float32 at off.
func PutF32(b []byte, off int, v float32) {
	binary.LittleEndian.PutUint32(b[off:], math.Float32bits(v))
}

// Float64Image converts a float64 slice to its byte image.
func Float64Image(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		PutF64(b, 8*i, v)
	}
	return b
}

// Float64s converts a byte image back to float64 values.
func Float64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = F64(b, 8*i)
	}
	return out
}

// Int32Image converts an int32 slice to its byte image.
func Int32Image(vals []int32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		PutI32(b, 4*i, v)
	}
	return b
}

// Int32s converts a byte image back to int32 values.
func Int32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = I32(b, 4*i)
	}
	return out
}
