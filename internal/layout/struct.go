package layout

import (
	"fmt"

	"mpicd/internal/ddt"
)

// Struct and matrix descriptors: the layout-level front end of the
// datatype plan compiler. Application code that already thinks in
// "struct with fields at offsets" or "submatrix of a row-major matrix"
// terms builds types here instead of hand-assembling ddt constructor
// trees; both lower to the same canonical run lists, so a StructOf and
// the equivalent ddt.Struct share one compiled plan in the cache.

// Field describes one struct member: a byte offset within the struct
// and an element type, repeated Count times contiguously. Count == 0
// means 1.
type Field struct {
	Off   int64
	Type  *ddt.Type
	Count int
}

// StructOf builds the derived datatype of a C struct with the given
// sizeof and fields. The sizeof sets the type extent, so arrays of the
// struct stride over trailing padding exactly like C arrays do.
func StructOf(size int64, fields ...Field) (*ddt.Type, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("layout: struct with no fields")
	}
	bls := make([]int, len(fields))
	displs := make([]int64, len(fields))
	types := make([]*ddt.Type, len(fields))
	for i, f := range fields {
		if f.Type == nil {
			return nil, fmt.Errorf("layout: field %d has no type", i)
		}
		if f.Count < 0 {
			return nil, fmt.Errorf("layout: field %d has negative count %d", i, f.Count)
		}
		if f.Off < 0 {
			return nil, fmt.Errorf("layout: field %d has negative offset %d", i, f.Off)
		}
		n := f.Count
		if n == 0 {
			n = 1
		}
		bls[i], displs[i], types[i] = n, f.Off, f.Type
	}
	if size < 0 {
		return nil, fmt.Errorf("layout: negative struct size %d", size)
	}
	t, err := ddt.Struct(bls, displs, types)
	if err != nil {
		return nil, err
	}
	return ddt.Resized(t, size)
}

// Rows2D describes rows cols-element rows of elem taken out of a matrix
// whose full row is rowStride elements wide — the classic submatrix /
// column-block layout (MPI_Type_vector over a row-major matrix).
func Rows2D(rows, cols, rowStride int, elem *ddt.Type) (*ddt.Type, error) {
	if elem == nil {
		return nil, fmt.Errorf("layout: nil element type")
	}
	return ddt.Hvector(rows, cols, int64(rowStride)*elem.Extent(), elem)
}
