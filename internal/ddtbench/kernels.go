package ddtbench

import (
	"fmt"

	"mpicd/internal/ddt"
)

// All lists the reproduced DDTBench kernels in Figure 10 order.
var All = []*Kernel{LAMMPS, MILC, NASLUx, NASLUy, NASMGx, NASMGy, WRFxVec, WRFyVec}

// ByName returns a kernel by its Figure 10 label.
func ByName(name string) (*Kernel, error) {
	for _, k := range All {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("ddtbench: unknown kernel %q", name)
}

const f64 = 8

// must panics on constructor errors: kernel shapes are static.
func must(t *ddt.Type, err error) *ddt.Type {
	if err != nil {
		panic(err)
	}
	return t
}

// ---------------------------------------------------------------------------
// LAMMPS — molecular dynamics atom exchange.
//
// Six per-atom arrays (x[3], v[3], tag, type, mask, q — all modeled as
// float64 like DDTBench's Fortran reals) packed for a subset of atoms
// selected by an index list with non-unit stride. Datatypes: hindexed per
// array combined in a struct. One loop over atoms, gathering from six
// arrays. Regions make no sense: thousands of 8-24 byte pieces.
var LAMMPS = &Kernel{
	Name:      "LAMMPS",
	Datatypes: "indexed, struct",
	Loops:     "single loop, 6 arrays (non-unit stride)",
	Regions:   false,
	Build: func(scale int) *Instance {
		natoms := 1024 * scale // atoms in the arrays
		idxStride := 2         // pack every other atom
		packAtoms := natoms / idxStride

		// Image layout: x[3*natoms] | v[3*natoms] | tag | type | mask | q.
		xOff := 0
		vOff := xOff + 3*natoms*f64
		tagOff := vOff + 3*natoms*f64
		typeOff := tagOff + natoms*f64
		maskOff := typeOff + natoms*f64
		qOff := maskOff + natoms*f64
		imageLen := qOff + natoms*f64

		idx := make([]int, packAtoms)
		for i := range idx {
			idx[i] = i * idxStride
		}

		// Derived datatype: per-array hindexed blocks, combined by struct.
		x3 := make([]int, packAtoms)
		dx := make([]int64, packAtoms)
		d1 := make([]int64, packAtoms)
		one := make([]int, packAtoms)
		for i, a := range idx {
			x3[i] = 3
			one[i] = 1
			dx[i] = int64(3 * a * f64)
			d1[i] = int64(a * f64)
		}
		tx := must(ddt.Hindexed(x3, dx, ddt.Float64))
		tscalar := must(ddt.Hindexed(one, d1, ddt.Float64))
		typ := must(ddt.Struct(
			[]int{1, 1, 1, 1, 1, 1},
			[]int64{int64(xOff), int64(vOff), int64(tagOff), int64(typeOff), int64(maskOff), int64(qOff)},
			[]*ddt.Type{tx, tx, tscalar, tscalar, tscalar, tscalar},
		))

		in := &Instance{
			ImageLen: imageLen,
			Packed:   packAtoms * 10 * f64,
			Type:     typ,
		}
		// The manual loop packs array by array (matching the datatype's
		// wire order): a single loop with non-unit stride per array.
		in.Walk = func(visit func(off, n int)) {
			for _, a := range idx {
				visit(xOff+3*a*f64, 3*f64)
			}
			for _, a := range idx {
				visit(vOff+3*a*f64, 3*f64)
			}
			for _, base := range []int{tagOff, typeOff, maskOff, qOff} {
				for _, a := range idx {
					visit(base+a*f64, f64)
				}
			}
		}
		return in
	},
}

// ---------------------------------------------------------------------------
// MILC — lattice QCD su3 vector face exchange.
//
// A [T][Z][Y][X] lattice of su3 vectors (3 complex doubles = 48 bytes per
// site); the z=0 face is exchanged. The manual pack is a five-deep loop
// nest (t, y, x, color, re/im) with non-unit stride between (t,y) lines.
// Each (t,y) line is X*48 contiguous bytes, so the face exposes a modest
// number of large regions — the case where the paper finds regions beat
// packing.
var MILC = &Kernel{
	Name:      "MILC",
	Datatypes: "strided vector",
	Loops:     "5 nested loops (non-unit stride)",
	Regions:   true,
	Build: func(scale int) *Instance {
		const su3 = 48 // 3 complex128
		T, Z, Y := 8, 2, 8
		X := 64 * scale
		lineBytes := X * su3   // one contiguous (t,y) line of the face
		strideY := Z * X * su3 // distance between y lines (z planes between)
		strideT := Y * Z * X * su3
		imageLen := T * Y * Z * X * su3

		// Two-level strided vector: T blocks of (Y lines strided by
		// strideY), blocks strided by strideT.
		line := must(ddt.Contiguous(X*3, ddt.Complex128))
		plane := must(ddt.Hvector(Y, 1, int64(strideY), line))
		typ := must(ddt.Hvector(T, 1, int64(strideT), plane))

		in := &Instance{
			ImageLen: imageLen,
			Packed:   T * Y * lineBytes,
			Type:     typ,
		}
		in.Walk = func(visit func(off, n int)) {
			// Five loops: t, y, x, color, re/im — the inner three emit one
			// 16-byte complex at a time, matching DDTBench's element-wise
			// Fortran loops.
			for t := 0; t < T; t++ {
				for y := 0; y < Y; y++ {
					base := t*strideT + y*strideY
					for x := 0; x < X; x++ {
						for c := 0; c < 3; c++ {
							visit(base+(x*3+c)*16, 16)
						}
					}
				}
			}
		}
		return in
	},
}

// ---------------------------------------------------------------------------
// NAS_LU_x — LU solver x-direction face: fully contiguous.
//
// Grid G[ny][nx][5] of doubles; the exchanged face G[0][:][:] is one
// contiguous block. Manual pack is two nested loops (i, m) that happen to
// walk contiguous memory; the datatype is plain contiguous and a single
// region covers the face.
var NASLUx = &Kernel{
	Name:      "NAS_LU_x",
	Datatypes: "contiguous",
	Loops:     "2 nested loops",
	Regions:   true,
	Build: func(scale int) *Instance {
		nx := 2048 * scale
		ny := 16
		rowBytes := 5 * f64
		typ := must(ddt.Contiguous(5*nx, ddt.Float64))
		in := &Instance{
			ImageLen: ny * nx * rowBytes,
			Packed:   nx * rowBytes,
			Type:     typ,
		}
		in.Walk = func(visit func(off, n int)) {
			for i := 0; i < nx; i++ {
				for m := 0; m < 5; m++ {
					visit(i*rowBytes+m*f64, f64)
				}
			}
		}
		return in
	},
}

// ---------------------------------------------------------------------------
// NAS_LU_y — LU solver y-direction face: strided 40-byte chunks.
//
// The face G[:][0][:] is ny chunks of 5 doubles strided by a full row:
// many small pieces, the case where the paper finds region exposure loses
// to packing.
var NASLUy = &Kernel{
	Name:      "NAS_LU_y",
	Datatypes: "strided vector",
	Loops:     "2 nested loops (non-contiguous)",
	Regions:   true,
	Build: func(scale int) *Instance {
		nx := 64
		ny := 512 * scale
		rowBytes := nx * 5 * f64
		typ := must(ddt.Hvector(ny, 5, int64(rowBytes), ddt.Float64))
		in := &Instance{
			ImageLen: ny * rowBytes,
			Packed:   ny * 5 * f64,
			Type:     typ,
		}
		in.Walk = func(visit func(off, n int)) {
			for j := 0; j < ny; j++ {
				for m := 0; m < 5; m++ {
					visit(j*rowBytes+m*f64, f64)
				}
			}
		}
		return in
	},
}

// ---------------------------------------------------------------------------
// NAS_MG_x — multigrid x-face: single strided doubles.
//
// Grid M[nz][ny][nx]; the face M[:][:][0] is nz*ny isolated 8-byte
// elements — the worst case for region exposure (and for the datatype
// engine, which degenerates to per-element copies).
var NASMGx = &Kernel{
	Name:      "NAS_MG_x",
	Datatypes: "strided vector",
	Loops:     "2 nested loops (non-contiguous)",
	Regions:   true,
	Build: func(scale int) *Instance {
		nx := 16
		ny := 64
		nz := 32 * scale
		typ := must(ddt.Vector(nz*ny, 1, nx, ddt.Float64))
		in := &Instance{
			ImageLen: nz * ny * nx * f64,
			Packed:   nz * ny * f64,
			Type:     typ,
		}
		in.Walk = func(visit func(off, n int)) {
			for k := 0; k < nz; k++ {
				for j := 0; j < ny; j++ {
					visit((k*ny+j)*nx*f64, f64)
				}
			}
		}
		return in
	},
}

// ---------------------------------------------------------------------------
// NAS_MG_y — multigrid y-face: nz contiguous rows.
//
// The face M[:][0][:] is nz contiguous runs of nx doubles: few large
// regions, favourable for region exposure.
var NASMGy = &Kernel{
	Name:      "NAS_MG_y",
	Datatypes: "strided vector",
	Loops:     "2 nested loops (non-contiguous)",
	Regions:   true,
	Build: func(scale int) *Instance {
		nx := 1024 * scale
		ny := 16
		nz := 32
		rowBytes := nx * f64
		typ := must(ddt.Hvector(nz, nx, int64(ny*rowBytes), ddt.Float64))
		in := &Instance{
			ImageLen: nz * ny * rowBytes,
			Packed:   nz * rowBytes,
			Type:     typ,
		}
		in.Walk = func(visit func(off, n int)) {
			for k := 0; k < nz; k++ {
				visit(k*ny*rowBytes, rowBytes)
			}
		}
		return in
	},
}

// ---------------------------------------------------------------------------
// WRF_x_vec — weather model x-boundary slab over several 3-D fields.
//
// Four fields F[nk][nj][ni] share one image; the exchanged slab is
// i in [0,2) of every (k,j) line of every field: a struct of strided
// vectors walked by a four-deep loop nest of 16-byte pieces.
var WRFxVec = &Kernel{
	Name:      "WRF_x_vec",
	Datatypes: "struct of strided vectors",
	Loops:     "4 nested loops (non-contiguous)",
	Regions:   false,
	Build: func(scale int) *Instance {
		const nf = 4
		const halo = 2
		ni := 32
		nj := 16
		nk := 16 * scale
		fieldBytes := nk * nj * ni * f64
		lineBytes := ni * f64

		slab := must(ddt.Hvector(nk*nj, halo, int64(lineBytes), ddt.Float64))
		displs := make([]int64, nf)
		bls := make([]int, nf)
		types := make([]*ddt.Type, nf)
		for fIdx := 0; fIdx < nf; fIdx++ {
			displs[fIdx] = int64(fIdx * fieldBytes)
			bls[fIdx] = 1
			types[fIdx] = slab
		}
		typ := must(ddt.Struct(bls, displs, types))

		in := &Instance{
			ImageLen: nf * fieldBytes,
			Packed:   nf * nk * nj * halo * f64,
			Type:     typ,
		}
		in.Walk = func(visit func(off, n int)) {
			for fIdx := 0; fIdx < nf; fIdx++ {
				base := fIdx * fieldBytes
				for k := 0; k < nk; k++ {
					for j := 0; j < nj; j++ {
						for i := 0; i < halo; i++ {
							visit(base+((k*nj+j)*ni+i)*f64, f64)
						}
					}
				}
			}
		}
		return in
	},
}

// ---------------------------------------------------------------------------
// WRF_y_vec — weather model y-boundary slab: larger contiguous runs.
//
// The slab j in [0,2) of every (field, k) plane: nf*nk*2 contiguous
// ni-double lines, walked by a three-deep loop nest.
var WRFyVec = &Kernel{
	Name:      "WRF_y_vec",
	Datatypes: "struct of strided vectors",
	Loops:     "3 nested loops (non-contiguous)",
	Regions:   false,
	Build: func(scale int) *Instance {
		const nf = 4
		const halo = 2
		ni := 64
		nj := 16
		nk := 16 * scale
		fieldBytes := nk * nj * ni * f64
		lineBytes := ni * f64

		plane := must(ddt.Hvector(nk, halo*ni, int64(nj*lineBytes), ddt.Float64))
		displs := make([]int64, nf)
		bls := make([]int, nf)
		types := make([]*ddt.Type, nf)
		for fIdx := 0; fIdx < nf; fIdx++ {
			displs[fIdx] = int64(fIdx * fieldBytes)
			bls[fIdx] = 1
			types[fIdx] = plane
		}
		typ := must(ddt.Struct(bls, displs, types))

		in := &Instance{
			ImageLen: nf * fieldBytes,
			Packed:   nf * nk * halo * ni * f64,
			Type:     typ,
		}
		in.Walk = func(visit func(off, n int)) {
			for fIdx := 0; fIdx < nf; fIdx++ {
				base := fIdx * fieldBytes
				for k := 0; k < nk; k++ {
					for j := 0; j < halo; j++ {
						visit(base+(k*nj+j)*ni*f64, ni*f64)
					}
				}
			}
		}
		return in
	},
}
