package ddtbench

import (
	"bytes"
	"fmt"
	"testing"

	"mpicd/internal/core"
)

func TestKernelMetadataMatchesTableI(t *testing.T) {
	want := map[string]bool{ // Table I "Memory Regions" column
		"LAMMPS": false, "MILC": true,
		"NAS_LU_x": true, "NAS_LU_y": true,
		"NAS_MG_x": true, "NAS_MG_y": true,
		"WRF_x_vec": false, "WRF_y_vec": false,
	}
	if len(All) != len(want) {
		t.Fatalf("%d kernels, want %d", len(All), len(want))
	}
	for _, k := range All {
		regions, ok := want[k.Name]
		if !ok {
			t.Fatalf("unexpected kernel %s", k.Name)
		}
		if k.Regions != regions {
			t.Fatalf("%s: regions = %v, want %v", k.Name, k.Regions, regions)
		}
		if k.Datatypes == "" || k.Loops == "" {
			t.Fatalf("%s: missing Table I metadata", k.Name)
		}
	}
}

func TestWalkMatchesDatatype(t *testing.T) {
	// The manual loop nest and the derived datatype must produce the same
	// packed byte stream: DDTBench's core invariant.
	for _, k := range All {
		t.Run(k.Name, func(t *testing.T) {
			in := k.Instance(1)
			img := in.NewImage(3)
			manual := make([]byte, in.Packed)
			if n := in.ManualPack(img, manual); n != in.Packed {
				t.Fatalf("manual pack wrote %d of %d", n, in.Packed)
			}
			if got := in.Type.PackedSize(1); got != int64(in.Packed) {
				t.Fatalf("datatype size %d != kernel packed %d", got, in.Packed)
			}
			if span := in.Type.Span(1); span > int64(in.ImageLen) {
				t.Fatalf("datatype span %d exceeds image %d", span, in.ImageLen)
			}
			engine := make([]byte, in.Packed)
			if _, err := in.Type.Pack(img, 1, engine); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(manual, engine) {
				t.Fatal("manual loop nest and datatype engine disagree")
			}
		})
	}
}

func TestManualRoundtrip(t *testing.T) {
	for _, k := range All {
		t.Run(k.Name, func(t *testing.T) {
			in := k.Instance(1)
			img := in.NewImage(5)
			packed := make([]byte, in.Packed)
			in.ManualPack(img, packed)
			out := make([]byte, in.ImageLen)
			if n := in.ManualUnpack(packed, out); n != in.Packed {
				t.Fatalf("unpack consumed %d of %d", n, in.Packed)
			}
			if !in.PackedEqual(img, out) {
				t.Fatal("manual roundtrip mismatch")
			}
		})
	}
}

func TestRangesCoverPackedBytes(t *testing.T) {
	for _, k := range All {
		in := k.Instance(1)
		total := 0
		for _, r := range in.Ranges() {
			total += r.Len
			if r.Off < 0 || r.Off+r.Len > in.ImageLen {
				t.Fatalf("%s: range %+v outside image", k.Name, r)
			}
		}
		if total != in.Packed {
			t.Fatalf("%s: ranges cover %d bytes, packed is %d", k.Name, total, in.Packed)
		}
	}
}

func TestAllMethodsTransferCorrectly(t *testing.T) {
	for _, k := range All {
		in := k.Instance(1)
		for _, m := range in.Methods() {
			t.Run(k.Name+"/"+string(m), func(t *testing.T) {
				src := in.NewImage(7)
				dst := make([]byte, in.ImageLen)
				err := core.Run(2, core.Options{}, func(c *core.Comm) error {
					e, err := NewEndpoint(in, m)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						return e.Send(c, src, 1, 1)
					}
					return e.Recv(c, dst, 0, 1)
				})
				if err != nil {
					t.Fatal(err)
				}
				if m == MethodReference {
					return // reference moves bytes, not the image
				}
				if !in.PackedEqual(src, dst) {
					t.Fatal("transferred payload mismatch")
				}
			})
		}
	}
}

func TestCustomRegionsRejectedWhereNotSensible(t *testing.T) {
	in := LAMMPS.Instance(1)
	if _, err := NewEndpoint(in, MethodCustomRegions); err == nil {
		t.Fatal("LAMMPS must reject the regions method (Table I)")
	}
}

func TestScalesGrowPackedSize(t *testing.T) {
	for _, k := range All {
		p1 := k.Instance(1).Packed
		p3 := k.Instance(3).Packed
		if p3 != 3*p1 {
			t.Fatalf("%s: packed(3) = %d, want 3*%d", k.Name, p3, p1)
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("MILC")
	if err != nil || k != MILC {
		t.Fatal("ByName(MILC) failed")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestRegionShapesMatchPaperExpectations(t *testing.T) {
	// The paper's Figure 10 analysis hinges on region counts: few large
	// regions for MILC/NAS_LU_x/NAS_MG_y, many small ones for
	// NAS_LU_y/NAS_MG_x.
	type shape struct {
		count   int
		avgSize int
	}
	shapes := map[string]shape{}
	for _, name := range []string{"MILC", "NAS_LU_x", "NAS_LU_y", "NAS_MG_x", "NAS_MG_y"} {
		k, _ := ByName(name)
		in := k.Instance(1)
		// Region exposure uses the coalesced datatype runs.
		regions := in.Type.NumRuns()
		shapes[name] = shape{regions, in.Packed / regions}
	}
	if shapes["NAS_LU_x"].count != 1 {
		t.Fatalf("NAS_LU_x should be one region, got %d", shapes["NAS_LU_x"].count)
	}
	for _, good := range []string{"MILC", "NAS_MG_y"} {
		if shapes[good].avgSize < 1024 {
			t.Fatalf("%s: avg region %d B, expected large regions", good, shapes[good].avgSize)
		}
	}
	for _, bad := range []string{"NAS_LU_y", "NAS_MG_x"} {
		if shapes[bad].avgSize > 64 {
			t.Fatalf("%s: avg region %d B, expected small regions", bad, shapes[bad].avgSize)
		}
	}
	fmt.Println() // keep fmt for debug ergonomics
}
