package ddtbench

import (
	"fmt"

	"mpicd/internal/core"
)

// Endpoint binds a kernel instance to one Figure 10 method on one rank,
// holding whatever scratch space the method needs so steady-state
// exchanges allocate nothing.
type Endpoint struct {
	In      *Instance
	M       Method
	dt      *core.Datatype
	scratch []byte
}

// NewEndpoint prepares an endpoint for (instance, method).
func NewEndpoint(in *Instance, m Method) (*Endpoint, error) {
	e := &Endpoint{In: in, M: m}
	switch m {
	case MethodReference:
		e.scratch = make([]byte, in.Packed)
	case MethodDDT:
		e.dt = core.FromDDT(in.Type)
	case MethodDDTPack, MethodManualPack:
		e.scratch = make([]byte, in.Packed)
		e.dt = core.FromDDT(in.Type)
	case MethodCustomPack, MethodCustomRegions, MethodCustomCoro:
		if m == MethodCustomRegions && !in.Kernel.Regions {
			return nil, fmt.Errorf("ddtbench: %s does not support memory regions", in.Kernel.Name)
		}
		e.dt = in.CustomType(m)
	default:
		return nil, fmt.Errorf("ddtbench: unknown method %q", m)
	}
	return e, nil
}

// Send transmits one exchange from img.
func (e *Endpoint) Send(c *core.Comm, img []byte, dst, tag int) error {
	switch e.M {
	case MethodReference:
		return c.Send(e.scratch, int64(e.In.Packed), core.TypeBytes, dst, tag)
	case MethodDDT, MethodCustomPack, MethodCustomRegions, MethodCustomCoro:
		return c.Send(img, 1, e.dt, dst, tag)
	case MethodDDTPack:
		if _, err := core.Pack(img, 1, e.dt, e.scratch); err != nil {
			return err
		}
		return c.Send(e.scratch, -1, core.TypeBytes, dst, tag)
	case MethodManualPack:
		e.In.ManualPack(img, e.scratch)
		return c.Send(e.scratch, -1, core.TypeBytes, dst, tag)
	}
	return fmt.Errorf("ddtbench: unknown method %q", e.M)
}

// Recv receives one exchange into img.
func (e *Endpoint) Recv(c *core.Comm, img []byte, src, tag int) error {
	switch e.M {
	case MethodReference:
		_, err := c.Recv(e.scratch, int64(e.In.Packed), core.TypeBytes, src, tag)
		return err
	case MethodDDT, MethodCustomPack, MethodCustomRegions, MethodCustomCoro:
		_, err := c.Recv(img, 1, e.dt, src, tag)
		return err
	case MethodDDTPack:
		if _, err := c.Recv(e.scratch, -1, core.TypeBytes, src, tag); err != nil {
			return err
		}
		return core.Unpack(e.scratch, img, 1, e.dt)
	case MethodManualPack:
		if _, err := c.Recv(e.scratch, -1, core.TypeBytes, src, tag); err != nil {
			return err
		}
		e.In.ManualUnpack(e.scratch, img)
		return nil
	}
	return fmt.Errorf("ddtbench: unknown method %q", e.M)
}
