// Package ddtbench reimplements the subset of the DDTBench micro-
// application suite used in the paper's Section V.C (Table I, Figure 10):
// LAMMPS, MILC, NAS_LU_x, NAS_LU_y, NAS_MG_x, NAS_MG_y, WRF_x_vec and
// WRF_y_vec. Each kernel describes one halo/boundary exchange as
//
//   - a C-layout memory image with a deterministic fill;
//   - a Walk function visiting the image's byte ranges in pack order (the
//     kernel's characteristic loop nest — single loops for LAMMPS, five
//     deep for MILC/WRF);
//   - a derived datatype built with the MPI constructors listed in
//     Table I;
//   - manual pack/unpack loops, custom pack/unpack callbacks, optional
//     memory-region exposure, and a coroutine-driven resumable pack
//     (the paper's Listing 9 experiment).
//
// All transfer strategies of Figure 10 are derived from these pieces; see
// the Method type.
package ddtbench

import (
	"fmt"

	"mpicd/internal/core"
	"mpicd/internal/coro"
	"mpicd/internal/ddt"
	"mpicd/internal/layout"
)

// Range is one contiguous byte range of an exchange, in pack order.
type Range struct {
	Off, Len int
}

// Kernel is one DDTBench micro-application.
type Kernel struct {
	// Name as it appears in Figure 10.
	Name string
	// Datatypes is Table I's "MPI Datatypes" column.
	Datatypes string
	// Loops is Table I's "Loop Structure" column.
	Loops string
	// Regions is Table I's "Memory Regions" column: whether exposing
	// memory regions is sensible for this access pattern.
	Regions bool
	// Build instantiates the kernel at a size scale (1 = smallest).
	// Callers use Instance, which also wires the back-reference.
	Build func(scale int) *Instance
}

// Instance builds the kernel at the given scale.
func (k *Kernel) Instance(scale int) *Instance {
	in := k.Build(scale)
	in.Kernel = k
	return in
}

// Instance is a kernel bound to concrete dimensions.
type Instance struct {
	Kernel   *Kernel
	ImageLen int // bytes of the full memory image
	Packed   int // packed bytes of one exchange
	Type     *ddt.Type

	// Walk visits the exchange's image ranges in pack order.
	Walk func(visit func(off, n int))

	ranges []Range // cached Walk output
}

// NewImage allocates and fills a source image.
func (in *Instance) NewImage(seed byte) []byte {
	img := make([]byte, in.ImageLen)
	for i := 0; i < in.ImageLen; i += 8 {
		layout.PutF64(img, i, float64(int(seed)*1000+i/8))
	}
	return img
}

// Ranges returns the exchange's byte ranges in pack order.
func (in *Instance) Ranges() []Range {
	if in.ranges == nil {
		in.Walk(func(off, n int) {
			in.ranges = append(in.ranges, Range{off, n})
		})
	}
	return in.ranges
}

// ManualPack is the hand-written packing loop: the kernel's loop nest
// copying into a cursor.
func (in *Instance) ManualPack(src, dst []byte) int {
	w := 0
	in.Walk(func(off, n int) {
		w += copy(dst[w:w+n], src[off:off+n])
	})
	return w
}

// ManualUnpack mirrors ManualPack.
func (in *Instance) ManualUnpack(src, dst []byte) int {
	r := 0
	in.Walk(func(off, n int) {
		r += copy(dst[off:off+n], src[r:r+n])
	})
	return r
}

// PackedEqual reports whether two images carry the same exchange payload.
func (in *Instance) PackedEqual(a, b []byte) bool {
	pa := make([]byte, in.Packed)
	pb := make([]byte, in.Packed)
	in.ManualPack(a, pa)
	in.ManualPack(b, pb)
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// Method is one Figure 10 transfer strategy.
type Method string

// The Figure 10 methods.
const (
	// MethodReference is a contiguous pingpong of the packed size: the
	// no-packing-needed roofline.
	MethodReference Method = "reference"
	// MethodDDT sends the derived datatype directly through the engine
	// (the Open MPI bar).
	MethodDDT Method = "mpi-ddt"
	// MethodDDTPack packs up front with the datatype engine (MPI_Pack)
	// and sends a contiguous buffer.
	MethodDDTPack Method = "mpi-pack"
	// MethodManualPack packs up front with hand-written loops and sends a
	// contiguous buffer.
	MethodManualPack Method = "manual-pack"
	// MethodCustomPack uses the custom datatype API with pack/unpack
	// callbacks only.
	MethodCustomPack Method = "custom-pack"
	// MethodCustomRegions uses the custom datatype API exposing the
	// exchange as memory regions (only where Table I marks it sensible).
	MethodCustomRegions Method = "custom-regions"
	// MethodCustomCoro is the resumable-pack ablation: custom pack
	// callbacks driven by a suspendable generator over the manual loop
	// nest (the paper's C++ coroutine experiment).
	MethodCustomCoro Method = "custom-coro"
)

// Methods lists the strategies applicable to an instance, in report order.
func (in *Instance) Methods() []Method {
	ms := []Method{MethodReference, MethodDDT, MethodDDTPack, MethodManualPack, MethodCustomPack, MethodCustomCoro}
	if in.Kernel.Regions {
		ms = append(ms, MethodCustomRegions)
	}
	return ms
}

// CustomType returns the custom datatype for the chosen flavour.
func (in *Instance) CustomType(m Method) *core.Datatype {
	switch m {
	case MethodCustomPack:
		return core.TypeCreateCustom(&imageHandler{in: in}, core.WithName(in.Kernel.Name+"-custom-pack"))
	case MethodCustomRegions:
		return core.TypeCreateCustom(&imageHandler{in: in, regions: true}, core.WithName(in.Kernel.Name+"-custom-regions"))
	case MethodCustomCoro:
		return core.TypeCreateCustom(&coroHandler{in: in}, core.WithInOrder(), core.WithName(in.Kernel.Name+"-custom-coro"))
	default:
		panic(fmt.Sprintf("ddtbench: %s is not a custom method", m))
	}
}

// imageHandler adapts a kernel instance to the custom datatype API: all
// bytes packed (regions=false) or all bytes exposed as memory regions
// (regions=true).
type imageHandler struct {
	in      *Instance
	regions bool
}

func (h *imageHandler) image(buf any) ([]byte, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, fmt.Errorf("ddtbench: image buffer must be []byte, got %T", buf)
	}
	if len(b) < h.in.ImageLen {
		return nil, fmt.Errorf("ddtbench: image is %d bytes, need %d", len(b), h.in.ImageLen)
	}
	return b, nil
}

func (h *imageHandler) State(buf any, _ core.Count) (any, error) { return h.image(buf) }
func (h *imageHandler) FreeState(any) error                      { return nil }

func (h *imageHandler) PackedSize(_, _ any, _ core.Count) (core.Count, error) {
	if h.regions {
		return 0, nil
	}
	return int64(h.in.Packed), nil
}

func (h *imageHandler) Pack(state, _ any, _, offset core.Count, dst []byte) (core.Count, error) {
	img := state.([]byte)
	n, err := h.in.Type.PackAt(img, 1, offset, dst)
	if err != nil && n > 0 {
		err = nil // io.EOF with bytes is normal end-of-stream
	}
	return int64(n), err
}

func (h *imageHandler) Unpack(state, _ any, _, offset core.Count, src []byte) error {
	return h.in.Type.UnpackAt(state.([]byte), 1, offset, src)
}

func (h *imageHandler) RegionCount(_, _ any, _ core.Count) (core.Count, error) {
	if !h.regions {
		return 0, nil
	}
	// Adjacent pieces coalesce: the region list is the datatype's run
	// list, so NAS_LU_x is one region while NAS_MG_x is thousands.
	return int64(h.in.Type.NumRuns()), nil
}

func (h *imageHandler) Regions(state, _ any, _ core.Count, regions [][]byte) error {
	if !h.regions {
		return nil
	}
	img := state.([]byte)
	// Fill the engine-provided scratch in place (no per-call allocation):
	// for count 1 the coalesced region count is exactly NumRuns.
	rs, err := h.in.Type.Plan().AppendRegions(regions[:0], img, 1)
	if err != nil {
		return err
	}
	if len(rs) != len(regions) {
		return fmt.Errorf("ddtbench: region count mismatch (%d != %d)", len(rs), len(regions))
	}
	return nil
}

// coroHandler packs through a suspendable generator running the kernel's
// manual loop nest: the resumable-pack experiment. The receive side
// unpacks through the engine (UnpackAt), as the paper's prototype did.
type coroHandler struct {
	in *Instance
}

type coroState struct {
	img    []byte
	packer *coro.Packer
	at     int64
}

func (h *coroHandler) State(buf any, _ core.Count) (any, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, fmt.Errorf("ddtbench: image buffer must be []byte, got %T", buf)
	}
	return &coroState{img: b}, nil
}

func (h *coroHandler) FreeState(state any) error {
	s := state.(*coroState)
	if s.packer != nil {
		s.packer.Close()
	}
	return nil
}

func (h *coroHandler) PackedSize(_, _ any, _ core.Count) (core.Count, error) {
	return int64(h.in.Packed), nil
}

func (h *coroHandler) Pack(state, _ any, _, offset core.Count, dst []byte) (core.Count, error) {
	s := state.(*coroState)
	if s.packer == nil {
		img := s.img
		walk := h.in.Walk
		s.packer = coro.NewPacker(func(put func([]byte)) {
			walk(func(off, n int) {
				put(img[off : off+n])
			})
		})
	}
	if offset != s.at {
		return 0, fmt.Errorf("ddtbench: coroutine pack requires sequential offsets (got %d, at %d)", offset, s.at)
	}
	n, _ := s.packer.Fill(dst)
	s.at += int64(n)
	return int64(n), nil
}

func (h *coroHandler) Unpack(state, _ any, _, offset core.Count, src []byte) error {
	return h.in.Type.UnpackAt(state.(*coroState).img, 1, offset, src)
}

func (h *coroHandler) RegionCount(_, _ any, _ core.Count) (core.Count, error) { return 0, nil }
func (h *coroHandler) Regions(_, _ any, _ core.Count, _ [][]byte) error       { return nil }
