// pickle demonstrates the paper's Python scenario: moving serialized
// objects (the pickle-5 / out-of-band-buffer model) over MPI three ways —
//
//	basic    one fully in-band message (serialization copies everything);
//	oob      header message + one message per large buffer (mpi4py's
//	         multi-message protocol, with its tag-space hazards);
//	oob-cdt  the paper's custom datatype: header packed + buffers as
//	         zero-copy regions, all in ONE MPI message.
//
// Run with: go run ./examples/pickle
package main

import (
	"fmt"
	"log"
	"time"

	"mpicd/internal/serial"
	"mpicd/mpi"
)

func main() {
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		peer := 1 - c.Rank()

		// The object: metadata plus several NumPy-like arrays (the
		// paper's "complex user-defined Python object").
		arrays := make([]any, 8)
		for i := range arrays {
			arrays[i] = serial.NewFloat64Array(128*1024/8, byte(i+1)) // 128 KiB each
		}
		obj := map[string]any{
			"experiment": "halo-exchange",
			"step":       int64(128),
			"fields":     arrays,
		}

		methods := []struct {
			name string
			send func() error
			recv func() (any, error)
		}{
			{"basic", func() error { return serial.SendBasic(c, obj, peer, 1) },
				func() (any, error) { return serial.RecvBasic(c, peer, 1) }},
			{"oob", func() error { return serial.SendOOB(c, obj, peer, 2, serial.DefaultThreshold) },
				func() (any, error) { return serial.RecvOOB(c, peer, 2) }},
			{"oob-cdt", func() error { return serial.SendCDT(c, obj, peer, 3, serial.DefaultThreshold) },
				func() (any, error) { return serial.RecvCDT(c, peer, 3) }},
		}

		const iters = 30
		for _, m := range methods {
			if err := c.Barrier(); err != nil {
				return err
			}
			start := time.Now()
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					if err := m.send(); err != nil {
						return err
					}
				} else {
					got, err := m.recv()
					if err != nil {
						return err
					}
					if i == 0 {
						o := got.(map[string]any)
						fmt.Printf("rank 1 [%7s]: got %q with %d fields\n",
							m.name, o["experiment"], len(o["fields"].([]any)))
					}
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("rank 0 [%7s]: %v/object (1 MiB payload)\n", m.name, time.Since(start)/iters)
			}
		}

		// The single-message property: after an oob-cdt receive, no
		// leftover buffer messages are in flight.
		if c.Rank() == 0 {
			return serial.SendCDT(c, obj, peer, 4, serial.DefaultThreshold)
		}
		if _, err := serial.RecvCDT(c, peer, 4); err != nil {
			return err
		}
		if _, ok, err := c.Iprobe(mpi.AnySource, mpi.AnyTag); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("unexpected leftover message")
		}
		fmt.Println("rank 1: oob-cdt moved the whole object as one atomic MPI message")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
