// halo runs a classic 2-D stencil halo exchange on a ring of ranks,
// combining the reproduction's building blocks: derived subarray
// datatypes for the contiguous row halos, a custom datatype for the
// strided column halos (fields packed, rows as regions), and collectives
// for the convergence check.
//
// Each rank owns an (interior nx × ny) block of a global field and
// iterates a 4-point smoothing stencil, exchanging one-cell halos with
// its ring neighbours each step.
//
// Run with: go run ./examples/halo
package main

import (
	"fmt"
	"log"
	"math"

	"mpicd/internal/layout"
	"mpicd/mpi"
)

const (
	nx    = 64 // interior columns
	ny    = 32 // interior rows
	steps = 200
)

// column halos are strided: expose them through a custom handler that
// sends each row's boundary cell as part of one packed buffer.
type colHandler struct{ stride, count, off int }

func (h colHandler) State(buf any, _ mpi.Count) (any, error) { return buf.([]byte), nil }
func (h colHandler) FreeState(any) error                     { return nil }

func (h colHandler) PackedSize(_, _ any, _ mpi.Count) (mpi.Count, error) {
	return mpi.Count(8 * h.count), nil
}

func (h colHandler) Pack(state, _ any, _, offset mpi.Count, dst []byte) (mpi.Count, error) {
	img := state.([]byte)
	var used mpi.Count
	for used < mpi.Count(len(dst)) {
		at := int(offset+used) / 8
		if at >= h.count {
			break
		}
		within := int(offset+used) % 8
		src := img[h.off+at*h.stride : h.off+at*h.stride+8]
		used += mpi.Count(copy(dst[used:], src[within:]))
	}
	return used, nil
}

func (h colHandler) Unpack(state, _ any, _, offset mpi.Count, src []byte) error {
	img := state.([]byte)
	for len(src) > 0 {
		at := int(offset) / 8
		within := int(offset) % 8
		n := copy(img[h.off+at*h.stride+within:h.off+at*h.stride+8], src)
		src = src[n:]
		offset += mpi.Count(n)
	}
	return nil
}

func (h colHandler) RegionCount(_, _ any, _ mpi.Count) (mpi.Count, error) { return 0, nil }
func (h colHandler) Regions(_, _ any, _ mpi.Count, _ [][]byte) error      { return nil }

func main() {
	const ranks = 4
	err := mpi.Run(ranks, mpi.Options{}, func(c *mpi.Comm) error {
		// Local field with a one-cell halo border: (nx+2) x (ny+2)
		// float64 cells, row-major.
		w := nx + 2
		hgt := ny + 2
		field := make([]byte, 8*w*hgt)
		next := make([]byte, 8*w*hgt)
		at := func(i, j int) int { return 8 * (j*w + i) }

		// Initialize: each rank gets a hot spot.
		layout.PutF64(field, at(nx/2, ny/2), 1000*float64(c.Rank()+1))

		left := (c.Rank() - 1 + ranks) % ranks
		right := (c.Rank() + 1) % ranks

		// Column halos as custom datatypes (strided cells packed).
		sendLeft := mpi.TypeCreateCustom(colHandler{stride: 8 * w, count: ny, off: at(1, 1)})
		sendRight := mpi.TypeCreateCustom(colHandler{stride: 8 * w, count: ny, off: at(nx, 1)})
		recvLeft := mpi.TypeCreateCustom(colHandler{stride: 8 * w, count: ny, off: at(0, 1)})
		recvRight := mpi.TypeCreateCustom(colHandler{stride: 8 * w, count: ny, off: at(nx+1, 1)})

		for step := 0; step < steps; step++ {
			// Exchange column halos with both ring neighbours.
			if _, err := c.SendRecv(field, 1, sendLeft, left, 1, field, 1, recvRight, right, 1); err != nil {
				return err
			}
			if _, err := c.SendRecv(field, 1, sendRight, right, 2, field, 1, recvLeft, left, 2); err != nil {
				return err
			}
			// Smooth the interior.
			for j := 1; j <= ny; j++ {
				for i := 1; i <= nx; i++ {
					v := 0.25 * (layout.F64(field, at(i-1, j)) + layout.F64(field, at(i+1, j)) +
						layout.F64(field, at(i, j-1)) + layout.F64(field, at(i, j+1)))
					layout.PutF64(next, at(i, j), v)
				}
			}
			field, next = next, field
		}

		// Global diagnostics: every rank gathers every rank's local heat
		// with the engine's Allgather and reduces locally — the per-rank
		// breakdown stays available for load diagnostics.
		var local float64
		for j := 1; j <= ny; j++ {
			for i := 1; i <= nx; i++ {
				local += math.Abs(layout.F64(field, at(i, j)))
			}
		}
		lbuf := make([]byte, 8)
		layout.PutF64(lbuf, 0, local)
		abuf := make([]byte, 8*ranks)
		if err := c.Allgather(lbuf, 1, mpi.FromDDT(mpi.Float64), abuf); err != nil {
			return err
		}
		var global float64
		for r := 0; r < ranks; r++ {
			global += layout.F64(abuf, 8*r)
		}
		if c.Rank() == 0 {
			fmt.Printf("after %d steps on %d ranks: global |field| = %.3f\n",
				steps, ranks, global)
		}
		return c.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
}
