// Quickstart: bring up an in-process world, send bytes, a derived
// datatype, and a custom datatype between two ranks.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"mpicd/mpi"
)

// vecHandler is a tiny custom datatype: a struct with two scalar fields
// that are packed, plus a heap-allocated payload sent as a zero-copy
// memory region — the kind of type classic derived datatypes cannot
// express without address tricks.
type vecHandler struct{}

// record is the application type.
type record struct {
	ID      int64
	Payload []byte // dynamic: sent as a memory region
}

func (vecHandler) State(buf any, _ mpi.Count) (any, error) { return buf.(*record), nil }
func (vecHandler) FreeState(any) error                     { return nil }

// The packed part is the 8-byte ID.
func (vecHandler) PackedSize(_, _ any, _ mpi.Count) (mpi.Count, error) { return 8, nil }

func (vecHandler) Pack(state, _ any, _, offset mpi.Count, dst []byte) (mpi.Count, error) {
	r := state.(*record)
	var hdr [8]byte
	for i := 0; i < 8; i++ {
		hdr[i] = byte(uint64(r.ID) >> (8 * i))
	}
	return mpi.Count(copy(dst, hdr[offset:])), nil
}

func (vecHandler) Unpack(state, _ any, _, offset mpi.Count, src []byte) error {
	r := state.(*record)
	for i, b := range src {
		r.ID |= int64(b) << (8 * (offset + mpi.Count(i)))
	}
	return nil
}

func (vecHandler) RegionCount(_, _ any, _ mpi.Count) (mpi.Count, error) { return 1, nil }

func (vecHandler) Regions(state, _ any, _ mpi.Count, regions [][]byte) error {
	regions[0] = state.(*record).Payload
	return nil
}

func main() {
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		peer := 1 - c.Rank()

		// 1. Plain bytes.
		if c.Rank() == 0 {
			if err := c.Send([]byte("hello from rank 0"), -1, mpi.TypeBytes, peer, 0); err != nil {
				return err
			}
		} else {
			buf := make([]byte, 32)
			st, err := c.Recv(buf, -1, mpi.TypeBytes, mpi.AnySource, 0)
			if err != nil {
				return err
			}
			fmt.Printf("rank 1: %q (%d bytes from rank %d)\n", buf[:st.Bytes], st.Bytes, st.Source)
		}

		// 2. A derived datatype: three int32s, an alignment gap, a
		// float64 — the paper's struct-simple (Listing 7).
		st, err := mpi.Struct([]int{3, 1}, []int64{0, 16}, []*mpi.DDT{mpi.Int32, mpi.Float64})
		if err != nil {
			return err
		}
		dt := mpi.FromDDT(st)
		img := make([]byte, st.Span(10))
		if c.Rank() == 0 {
			for i := range img {
				img[i] = byte(i)
			}
			if err := c.Send(img, 10, dt, peer, 1); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(img, 10, dt, peer, 1); err != nil {
				return err
			}
			fmt.Printf("rank 1: received 10 gapped struct elements (%d packed bytes)\n", st.PackedSize(10))
		}

		// 3. The paper's contribution: a custom datatype packing one
		// field and sending the dynamic payload zero-copy, in ONE
		// message.
		custom := mpi.TypeCreateCustom(vecHandler{}, mpi.WithName("record"))
		payload := bytes.Repeat([]byte("data"), 4096)
		if c.Rank() == 0 {
			return c.Send(&record{ID: 42, Payload: payload}, 1, custom, peer, 2)
		}
		recv := &record{Payload: make([]byte, len(payload))}
		if _, err := c.Recv(recv, 1, custom, peer, 2); err != nil {
			return err
		}
		fmt.Printf("rank 1: custom datatype delivered ID=%d with %d payload bytes (intact: %v)\n",
			recv.ID, len(recv.Payload), bytes.Equal(recv.Payload, payload))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
