// derive ports the structvec example to the Go-native derivation front
// end: instead of hand-assembling the Listing 6 datatype (offsets 0, 16,
// 24 spelled out against a raw byte image), the struct is declared as a
// plain Go type and everything else is derived from it —
//
//	dt := mpi.MustTypeOf[StructVec]()    // reflected once, memoized
//	mpi.SendSlice(c, elems, peer, tag)   // typed, zero staging copies
//
// The example proves the ergonomics change nothing on the wire: the
// derived datatype is transfer-equivalent to the hand-built ddt.Struct,
// shares its compiled plan (pointer identity through the plan cache),
// and delivers byte-identical payloads. Run with: go run ./examples/derive
package main

import (
	"fmt"
	"log"
	"time"

	"mpicd/mpi"
)

// StructVec is the paper's Listing 6 struct as an ordinary Go type:
// three i32s, the alignment gap Go inserts before the f64 (exactly where
// #[repr(C)] puts it), and a large fixed array. No offsets, no unsafe.
type StructVec struct {
	A, B, C int32
	D       float64
	Data    [2048]int32
}

func main() {
	const count = 64
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		peer := 1 - c.Rank()

		// The hand-built equivalent a binding would generate: the same
		// three fields at explicit offsets, resized to the struct extent.
		hand, err := mpi.Struct(
			[]int{3, 1, 2048},
			[]int64{0, 16, 24},
			[]*mpi.DDT{mpi.Int32, mpi.Float64, mpi.Int32},
		)
		if err != nil {
			return err
		}
		derived := mpi.MustTypeOf[StructVec]()
		if !mpi.TypeEqual(derived, hand) {
			return fmt.Errorf("derived type is not transfer-equivalent to the hand-built one")
		}
		if mpi.TypePlan(derived) != mpi.TypePlan(hand) {
			return fmt.Errorf("derived and hand-built types compiled separate plans")
		}
		if c.Rank() == 0 {
			fmt.Printf("derived == hand-built: equal layout, shared plan (%v kernel)\n",
				mpi.TypePlan(derived).Kind())
		}

		send := make([]StructVec, count)
		for e := range send {
			send[e].A, send[e].B, send[e].C = int32(3*e), int32(3*e+1), int32(3*e+2)
			send[e].D = float64(e) / 16
			for i := range send[e].Data {
				send[e].Data[i] = int32(e*2048 + i)
			}
		}
		recv := make([]StructVec, count)

		transfer := func() error {
			if c.Rank() == 0 {
				return mpi.SendSlice(c, send, peer, 1)
			}
			_, err := mpi.RecvSlice(c, recv, peer, 1)
			return err
		}

		// Correctness: the receiver gets the values, not just the bytes.
		if err := transfer(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for e := range recv {
				if recv[e] != send[e] {
					return fmt.Errorf("element %d corrupted in transfer", e)
				}
			}
			fmt.Printf("rank 1: %d elements intact after typed transfer\n", count)
		}

		// Timing, matching the structvec example's loop shape.
		const iters = 100
		if err := c.Barrier(); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := transfer(); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("rank 0 [derive]: %v/transfer (%d KiB payload)\n",
				time.Since(start)/iters, count*(20+4*2048)/1024)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
