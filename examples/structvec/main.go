// structvec compares three ways of moving the paper's struct-vec type
// (Listing 6: scalar fields + alignment gap + a large array):
//
//	rsmpi    the classic derived datatype (typemap engine) — what RSMPI's
//	         derive macro would produce;
//	packed   manual field-by-field packing into a staging buffer;
//	custom   the paper's API: fields packed by callback, the array sent
//	         as a zero-copy memory region.
//
// It verifies all three deliver identical payloads and prints a timing
// summary. Run with: go run ./examples/structvec
package main

import (
	"fmt"
	"log"
	"time"

	"mpicd/internal/workloads"
	"mpicd/mpi"
)

func main() {
	const count = 64 // 64 elements ≈ 512 KiB packed
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		img := make([]byte, count*workloads.StructVecExtent)
		workloads.FillStructVec(img, count, 3)
		rimg := make([]byte, len(img))
		scratch := make([]byte, count*workloads.StructVecPacked)

		ddtType := mpi.FromDDT(workloads.StructVecType())
		customType := workloads.StructVecCustom()

		transfer := func(method string) error {
			if c.Rank() == 0 {
				switch method {
				case "rsmpi":
					return c.Send(img, count, ddtType, peer, 1)
				case "packed":
					workloads.PackStructVec(img, count, scratch)
					return c.Send(scratch, -1, mpi.TypeBytes, peer, 1)
				case "custom":
					return c.Send(img, count, customType, peer, 1)
				}
			} else {
				switch method {
				case "rsmpi":
					_, err := c.Recv(rimg, count, ddtType, peer, 1)
					return err
				case "packed":
					if _, err := c.Recv(scratch, -1, mpi.TypeBytes, peer, 1); err != nil {
						return err
					}
					workloads.UnpackStructVec(scratch, rimg, count)
					return nil
				case "custom":
					_, err := c.Recv(rimg, count, customType, peer, 1)
					return err
				}
			}
			return nil
		}

		const iters = 100
		for _, method := range []string{"rsmpi", "packed", "custom"} {
			// Correctness first.
			for i := range rimg {
				rimg[i] = 0
			}
			if err := transfer(method); err != nil {
				return err
			}
			if c.Rank() == 1 {
				a := make([]byte, count*workloads.StructVecPacked)
				b := make([]byte, count*workloads.StructVecPacked)
				workloads.PackStructVec(img, count, a)
				workloads.PackStructVec(rimg, count, b)
				same := string(a) == string(b)
				fmt.Printf("rank 1 [%6s]: payload intact: %v\n", method, same)
				if !same {
					return fmt.Errorf("%s: transfer mismatch", method)
				}
			}
			// Then timing.
			if err := c.Barrier(); err != nil {
				return err
			}
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := transfer(method); err != nil {
					return err
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("rank 0 [%6s]: %v/transfer (%d KiB payload)\n",
					method, time.Since(start)/iters, count*workloads.StructVecPacked/1024)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
