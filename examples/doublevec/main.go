// doublevec demonstrates the paper's double-vector type (Vec<Vec<i32>>):
// a dynamic list of heap vectors. With classic derived datatypes this
// requires per-message datatype recreation and address arithmetic; with
// the custom API the lengths travel as a packed header and every
// subvector rides the wire as a zero-copy memory region — the receiver
// allocates from the unpacked header, shape unseen in advance.
//
// The example also times the custom transfer against manual packing to
// show where each wins (run with realistic sizes: it sweeps a few).
//
// Run with: go run ./examples/doublevec
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"mpicd/internal/workloads"
	"mpicd/mpi"
)

func main() {
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		dt := workloads.DoubleVecCustom()

		// Correctness: an irregular double-vector the receiver has never
		// seen the shape of.
		if c.Rank() == 0 {
			send := [][]byte{
				bytes.Repeat([]byte{1}, 10),
				bytes.Repeat([]byte{2}, 100000),
				{},
				bytes.Repeat([]byte{4}, 3),
			}
			if err := c.Send(send, 1, dt, peer, 0); err != nil {
				return err
			}
		} else {
			var recv [][]byte
			if _, err := c.Recv(&recv, 1, dt, peer, 0); err != nil {
				return err
			}
			fmt.Printf("rank 1: received %d subvectors of lengths", len(recv))
			for _, v := range recv {
				fmt.Printf(" %d", len(v))
			}
			fmt.Println(" — shape carried in-message")
		}

		// A small timing comparison: custom (header + regions, one
		// message) vs manual packing (serialize everything into one
		// buffer, probe on the receive side).
		const iters = 50
		for _, total := range []int{1 << 12, 1 << 17, 1 << 21} {
			vecs := workloads.NewDoubleVec(total, 1024, 7)
			for _, method := range []string{"custom", "manual-pack"} {
				if err := c.Barrier(); err != nil {
					return err
				}
				start := time.Now()
				for i := 0; i < iters; i++ {
					if c.Rank() == 0 {
						switch method {
						case "custom":
							if err := c.Send(vecs, 1, dt, peer, 1); err != nil {
								return err
							}
						case "manual-pack":
							buf := make([]byte, workloads.PackedDoubleVecSize(vecs))
							workloads.PackDoubleVec(vecs, buf)
							if err := c.Send(buf, -1, mpi.TypeBytes, peer, 1); err != nil {
								return err
							}
						}
					} else {
						switch method {
						case "custom":
							var recv [][]byte
							if _, err := c.Recv(&recv, 1, dt, peer, 1); err != nil {
								return err
							}
						case "manual-pack":
							m, err := c.Mprobe(peer, 1)
							if err != nil {
								return err
							}
							buf := make([]byte, m.Bytes)
							if _, err := c.MRecv(m, buf, -1, mpi.TypeBytes); err != nil {
								return err
							}
							if _, err := workloads.UnpackDoubleVec(buf); err != nil {
								return err
							}
						}
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					per := time.Since(start) / iters
					fmt.Printf("rank 0: %8d B  %-12s %v/transfer\n", total, method, per)
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
